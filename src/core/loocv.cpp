#include "core/loocv.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"

namespace pnp::core {

namespace {

/// Run `body(fold)` for every fold. Folds are fully independent (each
/// trains its own tuner and writes disjoint result cells), so with
/// PNP_PARALLEL they run concurrently — results are bit-identical to the
/// sequential order no matter the thread count.
template <class Body>
void for_each_fold(int num_folds, Body&& body) {
#ifdef PNP_PARALLEL
  std::exception_ptr err;
#pragma omp parallel for schedule(dynamic, 1)
  for (int fold = 0; fold < num_folds; ++fold) {
    try {
      body(fold);
    } catch (...) {
#pragma omp critical
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
#else
  for (int fold = 0; fold < num_folds; ++fold) body(fold);
#endif
}

/// LOOCV fold structure over applications.
struct Folds {
  std::vector<std::pair<std::string, std::vector<int>>> by_app;
  std::vector<int> all_regions;

  std::vector<int> training_for(std::size_t fold) const {
    std::vector<int> out;
    for (std::size_t a = 0; a < by_app.size(); ++a) {
      if (a == fold) continue;
      out.insert(out.end(), by_app[a].second.begin(), by_app[a].second.end());
    }
    return out;
  }
};

Folds make_folds(const MeasurementDb& db, int max_apps) {
  Folds f;
  f.by_app = regions_by_app(db);
  if (max_apps > 0 && static_cast<int>(f.by_app.size()) > max_apps)
    f.by_app.resize(static_cast<std::size_t>(max_apps));
  for (const auto& [app, rs] : f.by_app)
    f.all_regions.insert(f.all_regions.end(), rs.begin(), rs.end());
  return f;
}

/// Run scenario-1 LOOCV for one PnP variant; fills result[region][cap].
void loocv_power(const sim::Simulator& sim, const MeasurementDb& db,
                 const PnpOptions& pnp_opt, const Folds& folds,
                 std::vector<std::vector<S1Cell>>& out) {
  const auto& caps = db.space().power_caps();
  for_each_fold(static_cast<int>(folds.by_app.size()), [&](int fold) {
    PnpTuner tuner(db, pnp_opt);
    tuner.train_power_scenario(folds.training_for(static_cast<std::size_t>(fold)));
    for (int r : folds.by_app[static_cast<std::size_t>(fold)].second) {
      for (std::size_t k = 0; k < caps.size(); ++k) {
        const auto cfg = tuner.predict_power(r, static_cast<int>(k));
        S1Cell cell;
        cell.cfg = cfg;
        cell.seconds =
            sim.expected(db.region(r).region->desc, cfg, caps[k]).seconds;
        out[static_cast<std::size_t>(r)][k] = cell;
      }
    }
  });
}

}  // namespace

std::vector<std::pair<std::string, std::vector<int>>> regions_by_app(
    const MeasurementDb& db) {
  std::vector<std::pair<std::string, std::vector<int>>> out;
  for (int r = 0; r < db.num_regions(); ++r) {
    const std::string& app = db.region(r).region->desc.app;
    if (out.empty() || out.back().first != app)
      out.emplace_back(app, std::vector<int>{});
    out.back().second.push_back(r);
  }
  return out;
}

Scenario1Result run_power_experiment(const sim::Simulator& sim,
                                     const MeasurementDb& db,
                                     const ExperimentOptions& opt) {
  const Folds folds = make_folds(db, opt.max_apps);
  const auto& caps = db.space().power_caps();
  const std::size_t R = static_cast<std::size_t>(db.num_regions());

  Scenario1Result res;
  res.caps = caps;
  res.apps.resize(R);
  res.regions.resize(R);
  for (int r = 0; r < db.num_regions(); ++r) {
    res.apps[static_cast<std::size_t>(r)] = db.region(r).region->desc.app;
    res.regions[static_cast<std::size_t>(r)] =
        db.region(r).region->desc.qualified_name();
  }

  res.oracle_seconds.assign(R, std::vector<double>(caps.size(), 0.0));
  res.default_seconds.assign(R, std::vector<double>(caps.size(), 0.0));
  for (int r = 0; r < db.num_regions(); ++r) {
    for (std::size_t k = 0; k < caps.size(); ++k) {
      res.oracle_seconds[static_cast<std::size_t>(r)][k] =
          db.best_time(r, static_cast<int>(k));
      res.default_seconds[static_cast<std::size_t>(r)][k] =
          db.at_default(r, static_cast<int>(k)).seconds;
    }
  }

  const std::vector<std::vector<S1Cell>> empty(
      R, std::vector<S1Cell>(caps.size()));

  if (opt.run_pnp_static) {
    auto& cells = res.tuners[kPnpStatic] = empty;
    loocv_power(sim, db, opt.pnp, folds, cells);
  }
  if (opt.run_pnp_dynamic) {
    PnpOptions dyn = opt.pnp;
    dyn.use_counters = true;
    dyn.seed = opt.pnp.seed ^ 0xd1;
    auto& cells = res.tuners[kPnpDynamic] = empty;
    loocv_power(sim, db, dyn, folds, cells);
  }
  if (opt.run_baselines) {
    BlissTuner bliss(sim, db.space(), opt.baselines);
    OpenTunerLike otl(sim, db.space(), opt.baselines);
    auto& bcells = res.tuners[kBliss] = empty;
    auto& ocells = res.tuners[kOpenTuner] = empty;
    for (int r : folds.all_regions) {
      const auto& desc = db.region(r).region->desc;
      for (std::size_t k = 0; k < caps.size(); ++k) {
        const auto bc = bliss.tune_at_cap(desc, caps[k]);
        bcells[static_cast<std::size_t>(r)][k] = {
            bc.cfg, sim.expected(desc, bc.cfg, caps[k]).seconds, bc.executions};
        const auto oc = otl.tune_at_cap(desc, caps[k]);
        ocells[static_cast<std::size_t>(r)][k] = {
            oc.cfg, sim.expected(desc, oc.cfg, caps[k]).seconds, oc.executions};
      }
    }
  }
  return res;
}

UnseenCapResult run_unseen_cap_experiment(const sim::Simulator& sim,
                                          const MeasurementDb& db,
                                          const ExperimentOptions& opt) {
  const Folds folds = make_folds(db, opt.max_apps);
  const auto& caps = db.space().power_caps();
  const std::size_t R = static_cast<std::size_t>(db.num_regions());

  UnseenCapResult res;
  res.caps = caps;
  // Lowest and highest caps, as in the paper's four tests.
  res.heldout_cap_indices = {0, static_cast<int>(caps.size()) - 1};
  res.apps.resize(R);
  res.regions.resize(R);
  for (int r = 0; r < db.num_regions(); ++r) {
    res.apps[static_cast<std::size_t>(r)] = db.region(r).region->desc.app;
    res.regions[static_cast<std::size_t>(r)] =
        db.region(r).region->desc.qualified_name();
  }
  res.pnp.assign(res.heldout_cap_indices.size(), std::vector<S1Cell>(R));
  res.oracle_seconds.assign(res.heldout_cap_indices.size(),
                            std::vector<double>(R, 0.0));
  res.default_seconds.assign(res.heldout_cap_indices.size(),
                             std::vector<double>(R, 0.0));

  for (std::size_t hi = 0; hi < res.heldout_cap_indices.size(); ++hi) {
    const int heldout = res.heldout_cap_indices[hi];
    for (int r = 0; r < db.num_regions(); ++r) {
      res.oracle_seconds[hi][static_cast<std::size_t>(r)] =
          db.best_time(r, heldout);
      res.default_seconds[hi][static_cast<std::size_t>(r)] =
          db.at_default(r, heldout).seconds;
    }

    // Dynamic features + scalar normalized cap (paper §IV-B: static
    // features cannot capture behaviour at unobserved constraints).
    PnpOptions pnp = opt.pnp;
    pnp.use_counters = true;
    pnp.cap_onehot = false;
    pnp.seed = opt.pnp.seed ^ (0x515 + static_cast<std::uint64_t>(heldout));
    pnp.train_cap_indices.clear();
    for (int k = 0; k < static_cast<int>(caps.size()); ++k)
      if (k != heldout) pnp.train_cap_indices.push_back(k);

    for_each_fold(static_cast<int>(folds.by_app.size()), [&](int fold) {
      PnpTuner tuner(db, pnp);
      tuner.train_power_scenario(
          folds.training_for(static_cast<std::size_t>(fold)));
      for (int r : folds.by_app[static_cast<std::size_t>(fold)].second) {
        const auto cfg = tuner.predict_power_at(
            r, caps[static_cast<std::size_t>(heldout)]);
        S1Cell cell;
        cell.cfg = cfg;
        cell.seconds = sim.expected(db.region(r).region->desc, cfg,
                                    caps[static_cast<std::size_t>(heldout)])
                           .seconds;
        res.pnp[hi][static_cast<std::size_t>(r)] = cell;
      }
    });
  }
  return res;
}

Scenario2Result run_edp_experiment(const sim::Simulator& sim,
                                   const MeasurementDb& db,
                                   const ExperimentOptions& opt) {
  const Folds folds = make_folds(db, opt.max_apps);
  const auto& caps = db.space().power_caps();
  const std::size_t R = static_cast<std::size_t>(db.num_regions());
  const int tdp_index = static_cast<int>(caps.size()) - 1;

  Scenario2Result res;
  res.caps = caps;
  res.apps.resize(R);
  res.regions.resize(R);
  res.default_seconds.resize(R);
  res.default_joules.resize(R);
  res.oracle_edp.resize(R);
  for (int r = 0; r < db.num_regions(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    res.apps[ri] = db.region(r).region->desc.app;
    res.regions[ri] = db.region(r).region->desc.qualified_name();
    const auto& dflt = db.at_default(r, tdp_index);
    res.default_seconds[ri] = dflt.seconds;
    res.default_joules[ri] = dflt.joules;
    res.oracle_edp[ri] = db.best_by_edp(r).edp;
  }

  auto eval_choice = [&](int r, int cap_index,
                         const sim::OmpConfig& cfg) -> S2Cell {
    const auto er = sim.expected(db.region(r).region->desc, cfg,
                                 caps[static_cast<std::size_t>(cap_index)]);
    return S2Cell{cap_index, cfg, er.seconds, er.joules, 0};
  };

  auto run_pnp_variant = [&](const PnpOptions& pnp_opt, const char* name) {
    auto& cells = res.tuners[name];
    cells.assign(R, S2Cell{});
    for_each_fold(static_cast<int>(folds.by_app.size()), [&](int fold) {
      PnpTuner tuner(db, pnp_opt);
      tuner.train_edp_scenario(
          folds.training_for(static_cast<std::size_t>(fold)));
      for (int r : folds.by_app[static_cast<std::size_t>(fold)].second) {
        const auto jc = tuner.predict_edp(r);
        cells[static_cast<std::size_t>(r)] = eval_choice(r, jc.cap_index, jc.cfg);
      }
    });
  };

  if (opt.run_pnp_static) {
    PnpOptions pnp = opt.pnp;
    pnp.use_adamw = false;  // Table II: plain Adam for the EDP scenario
    run_pnp_variant(pnp, kPnpStatic);
  }
  if (opt.run_pnp_dynamic) {
    PnpOptions pnp = opt.pnp;
    pnp.use_adamw = false;
    pnp.use_counters = true;
    pnp.seed = opt.pnp.seed ^ 0xd2;
    run_pnp_variant(pnp, kPnpDynamic);
  }
  if (opt.run_baselines) {
    BlissTuner bliss(sim, db.space(), opt.baselines);
    OpenTunerLike otl(sim, db.space(), opt.baselines);
    auto& bcells = res.tuners[kBliss];
    auto& ocells = res.tuners[kOpenTuner];
    bcells.assign(R, S2Cell{});
    ocells.assign(R, S2Cell{});
    for (int r : folds.all_regions) {
      const auto& desc = db.region(r).region->desc;
      const auto bc = bliss.tune_edp(desc);
      bcells[static_cast<std::size_t>(r)] = eval_choice(r, bc.cap_index, bc.cfg);
      bcells[static_cast<std::size_t>(r)].executions = bc.executions;
      const auto oc = otl.tune_edp(desc);
      ocells[static_cast<std::size_t>(r)] = eval_choice(r, oc.cap_index, oc.cfg);
      ocells[static_cast<std::size_t>(r)].executions = oc.executions;
    }
  }
  return res;
}

TransferReport run_transfer_experiment(const MeasurementDb& src_db,
                                       const MeasurementDb& dst_db,
                                       const ExperimentOptions& opt) {
  TransferReport rep;
  std::vector<int> all_src, all_dst;
  for (int r = 0; r < src_db.num_regions(); ++r) all_src.push_back(r);
  for (int r = 0; r < dst_db.num_regions(); ++r) all_dst.push_back(r);

  // 1. Full training on the source machine (Haswell in the paper).
  PnpTuner src_tuner(src_db, opt.pnp);
  const auto src_rep = src_tuner.train_power_scenario(all_src);
  rep.source_train_seconds = src_rep.seconds;

  // 2. From-scratch training on the target machine.
  PnpTuner full_tuner(dst_db, opt.pnp);
  const auto full_rep = full_tuner.train_power_scenario(all_dst);
  rep.full_target_seconds = full_rep.seconds;
  rep.full_accuracy = full_rep.train_accuracy;
  rep.full_trainable_weights =
      full_tuner.net().num_weights(/*trainable_only=*/true);

  // 3. Transfer: load the source GNN, freeze it, retrain dense layers only.
  PnpOptions xfer_opt = opt.pnp;
  xfer_opt.seed = opt.pnp.seed ^ 0x77;
  PnpTuner xfer_tuner(dst_db, xfer_opt);
  xfer_tuner.import_gnn(src_tuner.state(), /*freeze_gnn=*/true);
  const auto xfer_rep = xfer_tuner.train_power_scenario(all_dst);
  rep.transfer_target_seconds = xfer_rep.seconds;
  rep.transfer_accuracy = xfer_rep.train_accuracy;
  rep.transfer_trainable_weights =
      xfer_tuner.net().num_weights(/*trainable_only=*/true);

  rep.speedup = rep.full_target_seconds /
                std::max(rep.transfer_target_seconds, 1e-9);
  return rep;
}

}  // namespace pnp::core
