#pragma once

/// \file tuner_artifact.hpp
/// The versioned on-disk form of a trained PnP tuner — everything needed
/// to reload it in a fresh process and serve bit-identical predictions:
/// PnpOptions, the training vocabulary, counter normalization statistics,
/// the trained scenario (mode), the classifier head layout, and all
/// network weights. See docs/SERVING.md for the byte-level layout and the
/// compatibility rules.
///
/// The artifact is stored as a single v2 StateDict file whose metadata
/// lives in string/int entries ("artifact.*", "opt.*", "vocab.*",
/// "model.*", "norm.*", "space.*") and whose network weights carry a
/// "net." prefix.

#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "core/search_space.hpp"
#include "graph/vocab.hpp"
#include "nn/matrix.hpp"

namespace pnp::core {

struct PnpOptions;
class MeasurementDb;

/// Number of profiled hardware counters the dynamic variant appends to the
/// dense input (paper §IV-B): instructions, L1/L2/L3 misses, branch
/// mispredictions.
inline constexpr int kNumProfiledCounters = 5;

struct TunerArtifact {
  /// Bumped when the artifact layout changes incompatibly; loaders reject
  /// files with a newer version than they understand. v2 added the
  /// "space.*" search-space fingerprint; v3 added the "space.constraints"
  /// fingerprint (flat (kind, a, b) triples of the space's ConstraintRule
  /// set); v4 added the "machine.*" identity block — the training
  /// machine's name and full-descriptor fingerprint, plus the fleet flag
  /// and per-machine fingerprints for fleet-trained models
  /// (docs/HARDWARE.md). v1–v3 files still load onto the legacy path: no
  /// constraint/machine fingerprint recorded, so those checks are skipped
  /// and — their spaces carrying no rules — scoring degenerates to the
  /// historic exhaustive/argmax decode.
  static constexpr std::int64_t kFormatVersion = 4;
  static constexpr const char* kKind = "pnp-tuner";

  /// Mirrors PnpTuner's private mode enum (0 = none is rejected on save).
  enum class Mode : int { None = 0, Power = 1, Edp = 2 };

  /// The format version actually stored in the loaded file (≤
  /// kFormatVersion); kFormatVersion for artifacts built in-process.
  std::int64_t version = kFormatVersion;
  Mode mode = Mode::None;
  /// Vocabulary tokens for ids 1..size-1, in id order (id 0 is the
  /// implicit OOV bucket). Tokens must not contain '\n'.
  std::vector<std::string> vocab_tokens;
  std::vector<double> counter_mean, counter_std;  ///< empty unless counters
  std::vector<int> head_sizes;
  int extra_features = 0;
  /// Preferred serving tier ("serve.precision" int entry, 0 = f64,
  /// 1 = f32). Optional for back-compat: artifacts written before the f32
  /// tier existed have no entry and load as f64.
  nn::Precision serve_precision = nn::Precision::f64;
  StateDict net_weights;  ///< unprefixed RgcnNet parameter names

  /// Fingerprint of the search space the tuner was trained against
  /// (format v2+; empty/0 when loaded from a v1 file). Lets loaders
  /// reject a cross-machine artifact even when the machines happen to
  /// share a classifier head layout (Haswell and Skylake both have
  /// 6×3×8 classes over 4 caps, but different thread/cap values).
  std::vector<int> space_threads;
  std::vector<int> space_chunks;
  std::vector<double> space_caps;
  int space_schedules = 0;

  /// Constraint-set fingerprint (format v3+): the space's ConstraintRule
  /// list flattened to (kind, a, b) triples, in rule order. Present —
  /// possibly empty — in every v3 file; absent (and empty here) for
  /// v1/v2 files. `has_constraint_fingerprint` distinguishes "v3 with no
  /// rules" from "pre-v3, never recorded".
  std::vector<double> space_constraints;
  bool has_constraint_fingerprint = false;

  /// The fingerprint decoded back into rules (validated on load).
  std::vector<ConstraintRule> constraint_rules() const;

  /// Machine identity (format v4+; docs/HARDWARE.md "Machine
  /// fingerprints"). `machine_fingerprint` is hw::machine_fingerprint of
  /// the primary training machine; 0 means "pre-v4, never recorded" and
  /// routes validation onto the legacy path. A single-machine artifact
  /// must serve exactly the machine it was trained on; a fleet artifact
  /// (`fleet` true, `fleet_fingerprints` listing every training machine)
  /// carries machine-conditioned features instead and may serve any
  /// machine whose search-space *shape* matches — that is the
  /// unseen-machine transfer path of paper Figs. 4–5.
  std::string machine_name;
  std::uint64_t machine_fingerprint = 0;
  bool fleet = false;
  std::vector<std::uint64_t> fleet_fingerprints;

  // PnpOptions is round-tripped field by field (see tuner_artifact.cpp);
  // the struct itself is stored here for symmetric save/load code.
  bool opt_use_counters = false;
  bool opt_cap_onehot = true;
  bool opt_factored_heads = true;
  bool opt_machine_features = false;
  int opt_emb_dim = 0;
  int opt_rgcn_layers = 0;
  int opt_hidden = 0;
  int opt_dense_hidden1 = 0;
  int opt_dense_hidden2 = 0;
  int opt_num_bases = 0;
  bool opt_use_adamw = true;
  double opt_lr = 0.0;
  double opt_weight_decay = 0.0;
  std::vector<int> opt_train_cap_indices;
  std::uint64_t opt_seed = 0;
  int opt_trainer_max_epochs = 0;
  int opt_trainer_batch_size = 0;
  int opt_trainer_patience = 0;
  double opt_trainer_min_loss = 0.0;
  std::uint64_t opt_trainer_seed = 0;

  /// Capture/restore the option block.
  void set_options(const PnpOptions& o);
  PnpOptions options() const;

  /// Rebuild the vocabulary (token ids identical to the one serialized).
  graph::Vocabulary make_vocab() const;

  /// Pack into / unpack from a StateDict. from_state_dict validates the
  /// kind, version, and internal consistency and throws pnp::Error on any
  /// violation.
  StateDict to_state_dict() const;
  static TunerArtifact from_state_dict(const StateDict& sd);

  /// Record the search space the tuner was trained against (save path).
  void set_space(const SearchSpace& space);

  /// File round-trip through the hardened StateDict reader/writer.
  void save_file(const std::string& path) const;
  static TunerArtifact load_file(const std::string& path);
};

/// Classifier head layout a trained tuner must have for `space` — shared
/// by training (build_model), restore, and artifact validation.
std::vector<int> tuner_head_layout(const SearchSpace& space,
                                   bool factored_heads, bool edp_scenario);

// --- Head-index math: the single source of truth ---------------------------
// Everything that maps between configurations, per-dimension class tuples,
// and the dense layout's flat class index goes through these helpers —
// trainer label construction, prediction decode, serving, and the
// baselines all share one arithmetic.

/// One joint decision in class coordinates. `cap` is meaningful only for
/// the EDP scenario (power queries carry the cap outside the label).
struct TunerClasses {
  int cap = 0;
  int thread = 0;
  int sched = 0;
  int chunk = 0;

  friend bool operator==(const TunerClasses&, const TunerClasses&) = default;
};

/// Class tuple of a configuration (+ cap index) under `space`. Throws if
/// the config is off the class grid.
TunerClasses tuner_classes_for(const SearchSpace& space,
                               const sim::OmpConfig& cfg, int cap_index);

/// Flat class index of a tuple in the dense one-logit-per-config layout
/// ((thread · S + sched) · C + chunk, cap-majored for EDP).
int tuner_flat_class(const SearchSpace& space, const TunerClasses& c,
                     bool edp_scenario);

/// Inverse of tuner_flat_class (power scenarios leave `cap` at 0).
TunerClasses tuner_classes_from_flat(const SearchSpace& space, int flat,
                                     bool edp_scenario);

/// Training labels for a tuple, in head order for the given layout:
/// factored → one label per head, dense → the single flat class.
std::vector<int> tuner_labels(const SearchSpace& space, const TunerClasses& c,
                              bool factored_heads, bool edp_scenario);

/// Width of the dense classifier's extra-feature slot for a mode/options
/// combination under a db with `num_caps` power caps. `machine_features`
/// appends hw::kNumMachineFeatures machine-conditioned inputs (fleet
/// training, docs/HARDWARE.md).
int tuner_extra_feature_count(bool power_scenario, bool cap_onehot,
                              int num_caps, bool use_counters,
                              bool machine_features);

/// Validate a loaded artifact against the measurement db it is about to
/// serve: classifier head layout, extra-feature width, counter stats,
/// train-cap indices, the (v2+) recorded search-space fingerprint, and
/// the (v3+) constraint fingerprint must all agree with `db`. Throws pnp::Error on any
/// mismatch; used by PnpTuner::load *before* any model state is built and
/// by serve::TuningService::reload so a bad artifact can never displace a
/// live model.
void validate_artifact(const TunerArtifact& art, const MeasurementDb& db);

}  // namespace pnp::core
