#pragma once

/// \file tuner_artifact.hpp
/// The versioned on-disk form of a trained PnP tuner — everything needed
/// to reload it in a fresh process and serve bit-identical predictions:
/// PnpOptions, the training vocabulary, counter normalization statistics,
/// the trained scenario (mode), the classifier head layout, and all
/// network weights. See docs/SERVING.md for the byte-level layout and the
/// compatibility rules.
///
/// The artifact is stored as a single v2 StateDict file whose metadata
/// lives in string/int entries ("artifact.*", "opt.*", "vocab.*",
/// "model.*", "norm.*") and whose network weights carry a "net." prefix.

#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "graph/vocab.hpp"

namespace pnp::core {

struct PnpOptions;

struct TunerArtifact {
  /// Bumped when the artifact layout changes incompatibly; loaders reject
  /// files with a newer version than they understand.
  static constexpr std::int64_t kFormatVersion = 1;
  static constexpr const char* kKind = "pnp-tuner";

  /// Mirrors PnpTuner's private mode enum (0 = none is rejected on save).
  enum class Mode : int { None = 0, Power = 1, Edp = 2 };

  /// The format version actually stored in the loaded file (≤
  /// kFormatVersion); kFormatVersion for artifacts built in-process.
  std::int64_t version = kFormatVersion;
  Mode mode = Mode::None;
  /// Vocabulary tokens for ids 1..size-1, in id order (id 0 is the
  /// implicit OOV bucket). Tokens must not contain '\n'.
  std::vector<std::string> vocab_tokens;
  std::vector<double> counter_mean, counter_std;  ///< empty unless counters
  std::vector<int> head_sizes;
  int extra_features = 0;
  StateDict net_weights;  ///< unprefixed RgcnNet parameter names

  // PnpOptions is round-tripped field by field (see tuner_artifact.cpp);
  // the struct itself is stored here for symmetric save/load code.
  bool opt_use_counters = false;
  bool opt_cap_onehot = true;
  bool opt_factored_heads = true;
  int opt_emb_dim = 0;
  int opt_rgcn_layers = 0;
  int opt_hidden = 0;
  int opt_dense_hidden1 = 0;
  int opt_dense_hidden2 = 0;
  int opt_num_bases = 0;
  bool opt_use_adamw = true;
  double opt_lr = 0.0;
  double opt_weight_decay = 0.0;
  std::vector<int> opt_train_cap_indices;
  std::uint64_t opt_seed = 0;
  int opt_trainer_max_epochs = 0;
  int opt_trainer_batch_size = 0;
  int opt_trainer_patience = 0;
  double opt_trainer_min_loss = 0.0;
  std::uint64_t opt_trainer_seed = 0;

  /// Capture/restore the option block.
  void set_options(const PnpOptions& o);
  PnpOptions options() const;

  /// Rebuild the vocabulary (token ids identical to the one serialized).
  graph::Vocabulary make_vocab() const;

  /// Pack into / unpack from a StateDict. from_state_dict validates the
  /// kind, version, and internal consistency and throws pnp::Error on any
  /// violation.
  StateDict to_state_dict() const;
  static TunerArtifact from_state_dict(const StateDict& sd);

  /// File round-trip through the hardened StateDict reader/writer.
  void save_file(const std::string& path) const;
  static TunerArtifact load_file(const std::string& path);
};

}  // namespace pnp::core
