#pragma once

/// \file measurement_db.hpp
/// Exhaustive (region × cap × configuration) measurement tables
/// (paper §III-C: "at each power level, parallel OpenMP regions in all
/// considered applications were executed for each runtime configuration").
///
/// Serves three roles: oracle lookups (best time / best EDP), default
/// baselines, and training labels for the PnP tuner.

#include <vector>

#include "core/search_space.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace pnp::core {

class MeasurementDb {
 public:
  /// Sweep every candidate of `space` for every region on `sim`'s machine
  /// using noiseless expected() results. `regions` may come from any
  /// Corpus (the paper Suite, a generated corpus, or a concatenation of
  /// both); the referenced corpora must outlive this db.
  MeasurementDb(const sim::Simulator& sim, const SearchSpace& space,
                const std::vector<workloads::Corpus::RegionRef>& regions);

  int num_regions() const { return static_cast<int>(regions_.size()); }
  int num_caps() const { return static_cast<int>(space_.power_caps().size()); }
  const SearchSpace& space() const { return space_; }
  /// The machine the table was swept on (copied from the simulator):
  /// machine-conditioned model features and the artifact-v4 machine
  /// fingerprint both read it.
  const hw::MachineModel& machine() const { return machine_; }
  const workloads::Corpus::RegionRef& region(int r) const {
    return regions_[static_cast<std::size_t>(r)];
  }

  /// Result of candidate `c` (grid index or default) at cap `k`.
  const sim::ExecutionResult& at(int region, int cap, int candidate) const;

  /// Result of the default configuration at cap `k`.
  const sim::ExecutionResult& at_default(int region, int cap) const;

  // --- Scenario 1: fastest at a fixed cap --------------------------------
  /// Candidate index minimizing expected time (ties → lowest index).
  int best_candidate_by_time(int region, int cap) const;
  double best_time(int region, int cap) const;

  // --- Scenario 2: minimum EDP over the joint space -----------------------
  struct JointBest {
    int cap_index = 0;
    int candidate = 0;
    double edp = 0.0;
  };
  JointBest best_by_edp(int region) const;

  /// Index of the region whose descriptor matches (app, region name); -1
  /// if absent.
  int find_region(const std::string& app, const std::string& region) const;

  /// Overwrite one cell's timing/energy with an observed measurement
  /// (feedback loop: replayed MeasurementLog records correcting or
  /// refreshing the table). avg_power_w is rederived as joules/seconds;
  /// the cell's profiled counters and frequency are preserved —
  /// observations carry power/runtime only, and the tuner's counter
  /// features must not be zeroed by an ingest. Bounds-checked; seconds
  /// and joules must be finite and positive.
  void apply_observation(int region, int cap, int candidate, double seconds,
                         double joules);

  /// Pure row-major grid index, computed entirely in std::size_t: safe
  /// even when regions × caps × per_cap exceeds INT_MAX (extended spaces
  /// already hold >2000 configs per region, and ingestion grows corpora
  /// unbounded). slot() and the log-replay path both route through this.
  static std::size_t grid_slot(std::size_t region, std::size_t num_caps,
                               std::size_t per_cap, std::size_t cap,
                               std::size_t candidate) {
    return (region * num_caps + cap) * per_cap + candidate;
  }

 private:
  std::size_t slot(int region, int cap, int candidate) const;

  SearchSpace space_;
  hw::MachineModel machine_;
  std::vector<workloads::Corpus::RegionRef> regions_;
  std::vector<sim::ExecutionResult> results_;
  int per_cap_ = 0;
};

}  // namespace pnp::core
