#include "graph/builder.hpp"

#include <map>
#include <string>

#include "common/error.hpp"

namespace pnp::graph {

namespace {

std::string instr_text(const ir::Instruction& in) {
  using ir::Opcode;
  if (in.op == Opcode::Call) return "call @" + in.aux;
  if (in.op == Opcode::ICmp || in.op == Opcode::FCmp)
    return std::string(ir::opcode_name(in.op)) + " " + in.aux;
  if (in.op == Opcode::AtomicRMW) return "atomicrmw " + in.aux;
  std::string t;
  if (in.type != ir::Type::Void) t = " " + std::string(ir::type_name(in.type));
  return std::string(ir::opcode_name(in.op)) + t;
}

}  // namespace

FlowGraph build_flow_graph(const ir::Module& m) {
  FlowGraph g;
  g.name = m.name;

  struct FnInfo {
    // node id of each instruction, addressed by (block, instr) position
    std::vector<std::vector<int>> instr_node;
    int entry_node = -1;
    std::vector<int> ret_nodes;
  };
  std::map<std::string, FnInfo> fn_info;

  // Pass 1: create instruction nodes for all functions.
  for (const auto& fn : m.functions) {
    FnInfo info;
    info.instr_node.resize(fn.blocks.size());
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& b = fn.blocks[bi];
      for (const auto& in : b.instrs) {
        const int nid = g.add_node(NodeKind::Instruction, instr_text(in));
        info.instr_node[bi].push_back(nid);
        if (in.op == ir::Opcode::Ret) info.ret_nodes.push_back(nid);
      }
    }
    if (!fn.blocks.empty() && !fn.blocks[0].instrs.empty())
      info.entry_node = info.instr_node[0][0];
    fn_info[fn.name] = std::move(info);
  }

  // Stub nodes for external callees, created lazily.
  std::map<std::string, int> extern_node;
  auto extern_stub = [&](const std::string& callee) {
    auto it = extern_node.find(callee);
    if (it != extern_node.end()) return it->second;
    const int nid = g.add_node(NodeKind::Instruction, "decl @" + callee);
    extern_node[callee] = nid;
    return nid;
  };

  // Pass 2: variables, constants, and all edges.
  for (const auto& fn : m.functions) {
    FnInfo& info = fn_info[fn.name];

    // Variable nodes for args / temps / globals (globals shared per module,
    // temps per function).
    std::map<int, int> arg_node, temp_node;
    static std::map<int, int>* global_nodes = nullptr;  // not used; see below
    (void)global_nodes;
    std::map<std::pair<int, long long>, int> const_int_node;
    std::map<std::pair<int, double>, int> const_float_node;

    auto var_node_for = [&](const ir::Value& v) -> int {
      switch (v.kind) {
        case ir::Value::Kind::Arg: {
          auto it = arg_node.find(v.index);
          if (it != arg_node.end()) return it->second;
          const int nid = g.add_node(
              NodeKind::Variable,
              "var " + std::string(ir::type_name(v.type)));
          arg_node[v.index] = nid;
          return nid;
        }
        case ir::Value::Kind::Temp: {
          auto it = temp_node.find(v.index);
          if (it != temp_node.end()) return it->second;
          const int nid = g.add_node(
              NodeKind::Variable,
              "var " + std::string(ir::type_name(v.type)));
          temp_node[v.index] = nid;
          return nid;
        }
        case ir::Value::Kind::ConstInt: {
          auto key = std::make_pair(static_cast<int>(v.type), v.ival);
          auto it = const_int_node.find(key);
          if (it != const_int_node.end()) return it->second;
          const int nid = g.add_node(
              NodeKind::Constant,
              "const " + std::string(ir::type_name(v.type)));
          const_int_node[key] = nid;
          return nid;
        }
        case ir::Value::Kind::ConstFloat: {
          auto key = std::make_pair(static_cast<int>(v.type), v.fval);
          auto it = const_float_node.find(key);
          if (it != const_float_node.end()) return it->second;
          const int nid = g.add_node(
              NodeKind::Constant,
              "const " + std::string(ir::type_name(v.type)));
          const_float_node[key] = nid;
          return nid;
        }
        default:
          PNP_CHECK_MSG(false, "not a data operand");
      }
    };

    // Global variable nodes (per function to keep locality of the region
    // graph; extracted modules have one function anyway).
    std::map<int, int> global_node;
    auto global_node_for = [&](int gi) {
      auto it = global_node.find(gi);
      if (it != global_node.end()) return it->second;
      const auto& gl = m.globals[static_cast<std::size_t>(gi)];
      const int nid = g.add_node(
          NodeKind::Variable,
          "global " + std::string(ir::type_name(gl.elem_type)));
      global_node[gi] = nid;
      return nid;
    };

    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& b = fn.blocks[bi];
      for (std::size_t ii = 0; ii < b.instrs.size(); ++ii) {
        const ir::Instruction& in = b.instrs[ii];
        const int self = info.instr_node[bi][ii];

        // Control: fallthrough to the next instruction in the block.
        if (ii + 1 < b.instrs.size())
          g.add_edge(self, info.instr_node[bi][ii + 1], EdgeRelation::Control,
                     0);

        // Control: terminator to successor block heads.
        if (in.op == ir::Opcode::Br || in.op == ir::Opcode::CondBr) {
          int ordinal = 0;
          for (const auto& v : in.operands) {
            if (v.kind != ir::Value::Kind::Block) continue;
            const auto& succ = fn.blocks[static_cast<std::size_t>(v.index)];
            PNP_CHECK_MSG(!succ.instrs.empty(), "empty successor block");
            g.add_edge(self,
                       info.instr_node[static_cast<std::size_t>(v.index)][0],
                       EdgeRelation::Control, ordinal++);
          }
        }

        // Data: operand uses.
        int pos = 0;
        for (const auto& v : in.operands) {
          switch (v.kind) {
            case ir::Value::Kind::Block:
              break;  // not data flow
            case ir::Value::Kind::Global:
              g.add_edge(global_node_for(v.index), self, EdgeRelation::Data,
                         pos);
              break;
            case ir::Value::Kind::Arg:
            case ir::Value::Kind::Temp:
            case ir::Value::Kind::ConstInt:
            case ir::Value::Kind::ConstFloat:
              g.add_edge(var_node_for(v), self, EdgeRelation::Data, pos);
              break;
            case ir::Value::Kind::None:
              PNP_CHECK_MSG(false, "operand of kind None");
          }
          ++pos;
        }

        // Data: result definition.
        if (in.has_result()) {
          const ir::Type t =
              (in.op == ir::Opcode::Alloca) ? ir::Type::Ptr : in.type;
          g.add_edge(self, var_node_for(ir::Value::temp(in.result, t)),
                     EdgeRelation::Data, 0);
        }

        // Call flow.
        if (in.op == ir::Opcode::Call) {
          auto target = fn_info.find(in.aux);
          if (target != fn_info.end() && target->second.entry_node >= 0) {
            g.add_edge(self, target->second.entry_node, EdgeRelation::Call, 0);
            for (int ret : target->second.ret_nodes)
              g.add_edge(ret, self, EdgeRelation::Call, 1);
          } else {
            const int stub = extern_stub(in.aux);
            g.add_edge(self, stub, EdgeRelation::Call, 0);
            g.add_edge(stub, self, EdgeRelation::Call, 1);
          }
        }
      }
    }
  }

  return g;
}

GraphTensors to_tensors(const FlowGraph& g, const Vocabulary& vocab) {
  GraphTensors t;
  t.name = g.name;
  t.num_nodes = g.num_nodes();
  t.token.reserve(g.nodes().size());
  t.kind.reserve(g.nodes().size());
  for (const auto& n : g.nodes()) {
    t.token.push_back(vocab.id_or_oov(n.text));
    t.kind.push_back(static_cast<int>(n.kind));
  }
  for (const auto& e : g.edges()) {
    const int fwd = 2 * static_cast<int>(e.rel);
    t.rel_edges[static_cast<std::size_t>(fwd)].emplace_back(e.src, e.dst);
    t.rel_edges[static_cast<std::size_t>(fwd + 1)].emplace_back(e.dst, e.src);
  }
  // Build the CSR message-passing form once, up front, so encode() never
  // pays for it and the tensors can be shared read-only across threads.
  t.finalize();
  return t;
}

}  // namespace pnp::graph
