#include "graph/vocab.hpp"

#include "common/error.hpp"
#include "graph/flow_graph.hpp"

namespace pnp::graph {

Vocabulary::Vocabulary() { token_of_id_.push_back("<oov>"); }

int Vocabulary::add(const std::string& token) {
  auto it = id_of_token_.find(token);
  if (it != id_of_token_.end()) return it->second;
  const int id = static_cast<int>(token_of_id_.size());
  id_of_token_[token] = id;
  token_of_id_.push_back(token);
  return id;
}

int Vocabulary::id_or_oov(const std::string& token) const {
  auto it = id_of_token_.find(token);
  return it == id_of_token_.end() ? 0 : it->second;
}

bool Vocabulary::contains(const std::string& token) const {
  return id_of_token_.count(token) != 0;
}

const std::string& Vocabulary::token(int id) const {
  PNP_CHECK(id >= 0 && id < size());
  return token_of_id_[static_cast<std::size_t>(id)];
}

Vocabulary Vocabulary::from_graphs(const std::vector<const FlowGraph*>& corpus) {
  Vocabulary v;
  for (const FlowGraph* g : corpus) {
    PNP_CHECK(g != nullptr);
    for (const auto& n : g->nodes()) v.add(n.text);
  }
  return v;
}

}  // namespace pnp::graph
