#include "graph/flow_graph.hpp"

#include "common/error.hpp"

namespace pnp::graph {

int FlowGraph::add_node(NodeKind kind, std::string text) {
  nodes_.push_back(Node{kind, std::move(text)});
  return static_cast<int>(nodes_.size()) - 1;
}

void FlowGraph::add_edge(int src, int dst, EdgeRelation rel, int position) {
  PNP_CHECK_MSG(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes(),
                "edge endpoint out of range: " << src << " -> " << dst);
  edges_.push_back(Edge{src, dst, rel, position});
}

int FlowGraph::count_kind(NodeKind k) const {
  int c = 0;
  for (const auto& n : nodes_)
    if (n.kind == k) ++c;
  return c;
}

int FlowGraph::count_relation(EdgeRelation r) const {
  int c = 0;
  for (const auto& e : edges_)
    if (e.rel == r) ++c;
  return c;
}

std::vector<int> GraphTensors::in_degree(int relation) const {
  PNP_CHECK(relation >= 0 && relation < kNumModelRelations);
  std::vector<int> deg(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& [src, dst] : rel_edges[static_cast<std::size_t>(relation)])
    ++deg[static_cast<std::size_t>(dst)];
  return deg;
}

void GraphTensors::finalize() const {
  for (int r = 0; r < kNumModelRelations; ++r) csr(r);
}

const RelationCsr& GraphTensors::csr(int relation) const {
  PNP_CHECK(relation >= 0 && relation < kNumModelRelations);
  const auto ri = static_cast<std::size_t>(relation);
  const auto& edges = rel_edges[ri];
  RelationCsr& c = csr_[ri];
  if (csr_built_[ri] && csr_edges_[ri] == edges.size() &&
      csr_nodes_[ri] == num_nodes)
    return c;

  const auto n = static_cast<std::size_t>(num_nodes);
  c.row_offset.assign(n + 1, 0);
  // Counting sort by target; the fill below is stable, so each target's
  // sources keep the order the edges were added in.
  for (const auto& [src, dst] : edges) {
    PNP_CHECK_MSG(src >= 0 && src < num_nodes && dst >= 0 && dst < num_nodes,
                  "edge endpoint out of range: " << src << " -> " << dst);
    ++c.row_offset[static_cast<std::size_t>(dst) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) c.row_offset[i + 1] += c.row_offset[i];

  c.src.resize(edges.size());
  std::vector<int> cursor(c.row_offset.begin(), c.row_offset.end() - 1);
  for (const auto& [src, dst] : edges)
    c.src[static_cast<std::size_t>(cursor[static_cast<std::size_t>(dst)]++)] =
        src;

  c.inv_deg.assign(n, 0.0);
  c.active_dst.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const int deg = c.row_offset[i + 1] - c.row_offset[i];
    if (deg == 0) continue;
    c.inv_deg[i] = 1.0 / static_cast<double>(deg);
    c.active_dst.push_back(static_cast<int>(i));
  }

  csr_edges_[ri] = edges.size();
  csr_nodes_[ri] = num_nodes;
  csr_built_[ri] = true;
  return c;
}

}  // namespace pnp::graph
