#include "graph/flow_graph.hpp"

#include "common/error.hpp"

namespace pnp::graph {

int FlowGraph::add_node(NodeKind kind, std::string text) {
  nodes_.push_back(Node{kind, std::move(text)});
  return static_cast<int>(nodes_.size()) - 1;
}

void FlowGraph::add_edge(int src, int dst, EdgeRelation rel, int position) {
  PNP_CHECK_MSG(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes(),
                "edge endpoint out of range: " << src << " -> " << dst);
  edges_.push_back(Edge{src, dst, rel, position});
}

int FlowGraph::count_kind(NodeKind k) const {
  int c = 0;
  for (const auto& n : nodes_)
    if (n.kind == k) ++c;
  return c;
}

int FlowGraph::count_relation(EdgeRelation r) const {
  int c = 0;
  for (const auto& e : edges_)
    if (e.rel == r) ++c;
  return c;
}

std::vector<int> GraphTensors::in_degree(int relation) const {
  PNP_CHECK(relation >= 0 && relation < kNumModelRelations);
  std::vector<int> deg(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& [src, dst] : rel_edges[static_cast<std::size_t>(relation)])
    ++deg[static_cast<std::size_t>(dst)];
  return deg;
}

}  // namespace pnp::graph
