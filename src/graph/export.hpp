#pragma once

/// \file export.hpp
/// Debug/visualization export of flow graphs.

#include <string>

#include "graph/flow_graph.hpp"

namespace pnp::graph {

/// Graphviz dot rendering: node shapes per kind, edge colors per relation.
std::string to_dot(const FlowGraph& g);

/// Node-link JSON rendering (strict JSON, validated before return):
/// {"name":…, "num_nodes":N, "num_edges":M,
///  "nodes":[{"id":0,"kind":"instruction","text":"…"},…],
///  "edges":[{"src":…,"dst":…,"rel":"control","position":…},…]}.
/// Nodes and edges appear in graph order, once each; output is a pure
/// function of the graph, so repeated calls are byte-identical.
std::string to_json(const FlowGraph& g);

/// Compact one-line summary, e.g.
/// "gemm:r0 nodes=87 (instr=52 var=24 const=11) edges=140 (ctl=58 data=74 call=8)".
std::string summary(const FlowGraph& g);

}  // namespace pnp::graph
