#pragma once

/// \file vocab.hpp
/// Token vocabulary for node texts. The embedding step of the paper
/// ("the code region IRs are used to generate an embedding [that] maps IR
/// text to tensors") is realized as a learned embedding table indexed by
/// these token ids.

#include <map>
#include <string>
#include <vector>

namespace pnp::graph {

class FlowGraph;

/// Deterministic token → id mapping with an out-of-vocabulary bucket at
/// id 0. Built from a training corpus so LOOCV folds can exercise OOV
/// handling on held-out applications.
class Vocabulary {
 public:
  Vocabulary();

  /// Register a token (no-op if present); returns its id.
  int add(const std::string& token);

  /// Id of a token, or the OOV id (0) when unknown.
  int id_or_oov(const std::string& token) const;

  /// True if the token is known.
  bool contains(const std::string& token) const;

  /// Number of ids including the OOV bucket.
  int size() const { return static_cast<int>(token_of_id_.size()); }

  /// The token string for an id (OOV id yields "<oov>").
  const std::string& token(int id) const;

  /// Build a vocabulary from the node texts of a corpus of graphs,
  /// inserting tokens in first-seen order for determinism.
  static Vocabulary from_graphs(const std::vector<const FlowGraph*>& corpus);

 private:
  std::map<std::string, int> id_of_token_;
  std::vector<std::string> token_of_id_;
};

}  // namespace pnp::graph
