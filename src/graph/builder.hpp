#pragma once

/// \file builder.hpp
/// Construction of PROGRAML-style flow graphs from mini-IR modules
/// (paper §III-A: "we use PROGRAML to obtain the corresponding graph
/// embeddings" of the extracted outlined regions).

#include "graph/flow_graph.hpp"
#include "graph/vocab.hpp"
#include "ir/module.hpp"

namespace pnp::graph {

/// Build the flow graph of an entire module (typically the single-function
/// module produced by ir::extract_function).
///
/// Construction rules (mirroring PROGRAML):
///  - every instruction becomes an Instruction node, text "opcode type"
///    (calls use "call @callee");
///  - every SSA temp / argument / global becomes a Variable node
///    ("var type" / "global type"); constants get Constant nodes dedup'd
///    by (type, value) within a function;
///  - control edges: instruction → next instruction in block, terminator →
///    successor block heads (position = successor ordinal);
///  - data edges: def instruction → its variable (position 0), and
///    variable/constant → user instruction (position = operand index);
///  - call edges: call site → callee entry instruction and callee ret →
///    call site; external callees get a stub Instruction node
///    ("decl @callee").
FlowGraph build_flow_graph(const ir::Module& m);

/// Flatten a flow graph into the tensor form consumed by the RGCN using
/// the given vocabulary (unknown tokens map to the OOV id).
GraphTensors to_tensors(const FlowGraph& g, const Vocabulary& vocab);

}  // namespace pnp::graph
