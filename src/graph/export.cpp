#include "graph/export.hpp"

#include <sstream>

namespace pnp::graph {

std::string to_dot(const FlowGraph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name << "\" {\n";
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Node& n = g.node(i);
    const char* shape = "box";
    if (n.kind == NodeKind::Variable) shape = "ellipse";
    if (n.kind == NodeKind::Constant) shape = "diamond";
    os << "  n" << i << " [label=\"" << n.text << "\", shape=" << shape
       << "];\n";
  }
  for (const auto& e : g.edges()) {
    const char* color = "black";   // control
    if (e.rel == EdgeRelation::Data) color = "blue";
    if (e.rel == EdgeRelation::Call) color = "red";
    os << "  n" << e.src << " -> n" << e.dst << " [color=" << color << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string summary(const FlowGraph& g) {
  std::ostringstream os;
  os << g.name << " nodes=" << g.num_nodes() << " (instr="
     << g.count_kind(NodeKind::Instruction)
     << " var=" << g.count_kind(NodeKind::Variable)
     << " const=" << g.count_kind(NodeKind::Constant) << ") edges="
     << g.num_edges() << " (ctl=" << g.count_relation(EdgeRelation::Control)
     << " data=" << g.count_relation(EdgeRelation::Data)
     << " call=" << g.count_relation(EdgeRelation::Call) << ")";
  return os.str();
}

}  // namespace pnp::graph
