#include "graph/export.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace pnp::graph {

namespace {

const char* kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Instruction:
      return "instruction";
    case NodeKind::Variable:
      return "variable";
    case NodeKind::Constant:
      return "constant";
  }
  PNP_CHECK_MSG(false, "unreachable node kind " << static_cast<int>(k));
  throw Error("unreachable");
}

const char* relation_name(EdgeRelation r) {
  switch (r) {
    case EdgeRelation::Control:
      return "control";
    case EdgeRelation::Data:
      return "data";
    case EdgeRelation::Call:
      return "call";
  }
  PNP_CHECK_MSG(false, "unreachable edge relation " << static_cast<int>(r));
  throw Error("unreachable");
}

}  // namespace

std::string to_dot(const FlowGraph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name << "\" {\n";
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Node& n = g.node(i);
    const char* shape = "box";
    if (n.kind == NodeKind::Variable) shape = "ellipse";
    if (n.kind == NodeKind::Constant) shape = "diamond";
    os << "  n" << i << " [label=\"" << n.text << "\", shape=" << shape
       << "];\n";
  }
  for (const auto& e : g.edges()) {
    const char* color = "black";   // control
    if (e.rel == EdgeRelation::Data) color = "blue";
    if (e.rel == EdgeRelation::Call) color = "red";
    os << "  n" << e.src << " -> n" << e.dst << " [color=" << color << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_json(const FlowGraph& g) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(g.name);
  w.key("num_nodes").value(g.num_nodes());
  w.key("num_edges").value(g.num_edges());
  w.key("nodes").begin_array();
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Node& n = g.node(i);
    w.begin_object();
    w.key("id").value(i);
    w.key("kind").value(kind_name(n.kind));
    w.key("text").value(n.text);
    w.end_object();
  }
  w.end_array();
  w.key("edges").begin_array();
  for (const auto& e : g.edges()) {
    w.begin_object();
    w.key("src").value(e.src);
    w.key("dst").value(e.dst);
    w.key("rel").value(relation_name(e.rel));
    w.key("position").value(e.position);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  std::string err;
  PNP_CHECK_MSG(json_validate(doc, &err), "graph JSON self-check: " << err);
  return doc;
}

std::string summary(const FlowGraph& g) {
  std::ostringstream os;
  os << g.name << " nodes=" << g.num_nodes() << " (instr="
     << g.count_kind(NodeKind::Instruction)
     << " var=" << g.count_kind(NodeKind::Variable)
     << " const=" << g.count_kind(NodeKind::Constant) << ") edges="
     << g.num_edges() << " (ctl=" << g.count_relation(EdgeRelation::Control)
     << " data=" << g.count_relation(EdgeRelation::Data)
     << " call=" << g.count_relation(EdgeRelation::Call) << ")";
  return os.str();
}

}  // namespace pnp::graph
