#pragma once

/// \file flow_graph.hpp
/// The flow-aware program multigraph of PROGRAML (Cummins et al., ICML'21),
/// as used by the paper (§II-A, §III-A): one vertex per instruction,
/// separate vertices for variables and constants, and typed edges for
/// control, data, and call flow.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pnp::graph {

enum class NodeKind : std::uint8_t {
  Instruction = 0,
  Variable = 1,
  Constant = 2,
};
inline constexpr int kNumNodeKinds = 3;

enum class EdgeRelation : std::uint8_t {
  Control = 0,  ///< instruction → instruction program order / branches
  Data = 1,     ///< def: instruction → variable; use: variable/const → instr
  Call = 2,     ///< call site ↔ callee entry/exit
};
inline constexpr int kNumEdgeRelations = 3;

/// Number of relations the GNN sees: each edge type contributes a forward
/// and a backward relation (RGCN with inverse relations).
inline constexpr int kNumModelRelations = 2 * kNumEdgeRelations;

struct Node {
  NodeKind kind = NodeKind::Instruction;
  /// The node's text token, e.g. "fmul f64", "var i64", "const f64".
  /// This is what the vocabulary embeds (the paper's "IR code block" node
  /// feature).
  std::string text;
};

struct Edge {
  int src = -1;
  int dst = -1;
  EdgeRelation rel = EdgeRelation::Control;
  /// Operand position (data) or successor ordinal (control); keeps the
  /// construction deterministic and testable.
  int position = 0;
};

/// A flow-aware multigraph for one OpenMP region.
class FlowGraph {
 public:
  std::string name;

  int add_node(NodeKind kind, std::string text);
  void add_edge(int src, int dst, EdgeRelation rel, int position = 0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Count of nodes of a given kind.
  int count_kind(NodeKind k) const;

  /// Count of edges of a given relation.
  int count_relation(EdgeRelation r) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// Compressed-sparse-row view of one model relation, grouped by target
/// node: the sources aggregated by target `t` are
/// `src[row_offset[t] .. row_offset[t+1])`, in the order the edges were
/// added. `inv_deg[t]` is the RGCN normalization constant 1/c_{t,r}
/// (0.0 for targets with no in-edges), and `active_dst` lists, in
/// ascending order, exactly the targets with at least one in-edge — the
/// only rows a message-passing kernel needs to visit.
struct RelationCsr {
  std::vector<int> row_offset;  ///< size num_nodes + 1
  std::vector<int> src;         ///< edge sources grouped by target
  std::vector<double> inv_deg;  ///< size num_nodes; 1/deg or 0.0
  std::vector<int> active_dst;  ///< targets with deg > 0, ascending

  int num_edges() const { return static_cast<int>(src.size()); }
  int num_active() const { return static_cast<int>(active_dst.size()); }
};

/// Edge lists regrouped per model relation (3 edge types × 2 directions) —
/// the compact form consumed by the RGCN. Relation index = 2*rel + dir,
/// dir 0 = forward (src→dst as stored), dir 1 = reversed.
struct GraphTensors {
  std::string name;
  int num_nodes = 0;
  std::vector<int> token;  ///< vocabulary id per node
  std::vector<int> kind;   ///< NodeKind per node as int
  /// For each model relation: list of (source, target) pairs meaning
  /// "target aggregates source".
  std::array<std::vector<std::pair<int, int>>, kNumModelRelations> rel_edges;

  /// In-degree of each node under one model relation (normalization
  /// constants c_{i,r} of the RGCN).
  std::vector<int> in_degree(int relation) const;

  /// Build the per-relation CSR forms now. `to_tensors` calls this once at
  /// construction; calling it again after `rel_edges` grew rebuilds only
  /// the changed relations. Safe to skip: csr() builds lazily.
  void finalize() const;

  /// CSR view of one model relation. Lazily (re)built when the relation's
  /// edge-list size or the node count changed since the last build, so
  /// hand-assembled tensors (tests) work without an explicit finalize().
  /// Caveat: rewriting an existing edge in place (same list size) is not
  /// detected — call finalize() on a fresh relation list instead. Not
  /// thread-safe on first access — finalize() before sharing across
  /// threads.
  const RelationCsr& csr(int relation) const;

 private:
  mutable std::array<RelationCsr, kNumModelRelations> csr_;
  mutable std::array<std::size_t, kNumModelRelations> csr_edges_{};
  mutable std::array<int, kNumModelRelations> csr_nodes_{};
  mutable std::array<bool, kNumModelRelations> csr_built_{};
};

}  // namespace pnp::graph
