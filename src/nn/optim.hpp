#pragma once

/// \file optim.hpp
/// Optimizers. The paper (Table II) uses AdamW with amsgrad for the
/// power-constrained scenario and Adam for the EDP scenario; plain SGD is
/// kept for tests and ablations.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace pnp::nn {

/// A named trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Matrix w;
  Matrix g;
  bool trainable = true;

  Param(std::string n, Matrix weights)
      : name(std::move(n)),
        w(std::move(weights)),
        g(Matrix::zeros(w.rows(), w.cols())) {}
};

/// Base optimizer interface; `step` consumes and applies the accumulated
/// gradients of all trainable params (frozen params are skipped), then the
/// caller zeroes gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(std::vector<Param*>& params) = 0;
  virtual std::string name() const = 0;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(std::vector<Param*>& params) override;
  std::string name() const override { return "sgd"; }

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;  // parallel to params by index
};

/// Adam / AdamW. `decoupled_weight_decay=false` gives classic Adam (with
/// optional L2 folded into the gradient); `true` gives AdamW. `amsgrad`
/// keeps the running max of the second-moment estimate (Table II:
/// "AdamW (amsgrad)").
class Adam final : public Optimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
    bool decoupled_weight_decay = false;  // true = AdamW
    bool amsgrad = false;
  };

  explicit Adam(Config cfg);

  /// Paper defaults for the two scenarios.
  static std::unique_ptr<Adam> adamw_amsgrad(double lr = 1e-3,
                                             double weight_decay = 1e-2);
  static std::unique_ptr<Adam> plain(double lr = 1e-3);

  void step(std::vector<Param*>& params) override;
  std::string name() const override {
    return cfg_.decoupled_weight_decay ? "adamw" : "adam";
  }

 private:
  Config cfg_;
  std::int64_t t_ = 0;
  std::vector<Matrix> m_, v_, vhat_;  // parallel to params by index
};

}  // namespace pnp::nn
