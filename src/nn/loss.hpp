#pragma once

/// \file loss.hpp
/// Softmax cross-entropy (the paper's loss function, Table II), including
/// the multi-head variant used by the factorized configuration classifier.

#include <span>
#include <vector>

namespace pnp::nn {

/// Numerically stable log-softmax + NLL for one head.
/// Returns the loss; writes d(loss)/d(logits) into `grad` (same length).
double softmax_cross_entropy(std::span<const double> logits, int label,
                             std::span<double> grad);

/// Probability vector (softmax) — used at inference to rank configurations.
std::vector<double> softmax(std::span<const double> logits);

/// Argmax convenience with deterministic (lowest index) tie-breaking.
int argmax_index(std::span<const double> xs);

/// f32-tier overload; identical first-max-wins tie-breaking.
int argmax_index(std::span<const float> xs);

}  // namespace pnp::nn
