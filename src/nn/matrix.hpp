#pragma once

/// \file matrix.hpp
/// Row-major dense matrices and the handful of BLAS-like kernels the GNN
/// needs. Double precision throughout so finite-difference gradient checks
/// are meaningful.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pnp::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Matrix xavier(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  double* row(int r) {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const double* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat() { return data_; }

  void fill(double v);
  void zero() { fill(0.0); }

  /// this += a * other (axpy); shapes must match.
  void add_scaled(const Matrix& other, double a);

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// C += A · B. Shapes: A (m×k), B (k×n), C (m×n).
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C += Aᵀ · B. Shapes: A (k×m), B (k×n), C (m×n).
void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A · Bᵀ. Shapes: A (m×k), B (n×k), C (m×n).
void gemm_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// Add a bias row vector to every row of m.
void add_bias_rows(Matrix& m, std::span<const double> bias);

/// Accumulate the column sums of m into out (size cols).
void colsum_acc(const Matrix& m, std::span<double> out);

/// Frobenius inner product Σᵢⱼ aᵢⱼ·bᵢⱼ.
double frob_inner(const Matrix& a, const Matrix& b);

}  // namespace pnp::nn
