#pragma once

/// \file matrix.hpp
/// Row-major dense matrices and the handful of BLAS-like kernels the GNN
/// needs. Double precision throughout so finite-difference gradient checks
/// are meaningful.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pnp::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Matrix xavier(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  double* row(int r) {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const double* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat() { return data_; }

  void fill(double v);
  void zero() { fill(0.0); }

  /// Reshape in place, reusing the existing allocation when it is large
  /// enough (the zero-allocation training workspaces rely on this).
  /// Contents are unspecified afterwards — callers must overwrite or zero.
  void resize(int rows, int cols);

  /// this += a * other (axpy); shapes must match.
  void add_scaled(const Matrix& other, double a);

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// C += A · B. Shapes: A (m×k), B (k×n), C (m×n).
///
/// The gemm kernels hold register-blocked C tiles across the whole k
/// reduction and use FMA SIMD micro-kernels when the build targets AVX-512
/// or AVX2 (e.g. -march=native via the PNP_NATIVE option), falling back to
/// a cache-blocked scalar path elsewhere. When the library is built with
/// PNP_PARALLEL they are additionally OpenMP row-parallel above a flop
/// threshold; row blocks of C are disjoint and each row's summation order
/// is independent of the thread count, so parallel results are
/// bit-identical to the single-thread run.
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C += Aᵀ · B. Shapes: A (k×m), B (k×n), C (m×n).
void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A · Bᵀ. Shapes: A (m×k), B (n×k), C (m×n).
void gemm_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A · B (+ bias broadcast to every row when non-empty). The
/// overwrite/bias-fused variants save the zero-fill + bias passes the
/// accumulate forms would need; shapes as gemm_acc, bias size n or 0.
void gemm_bias(const Matrix& a, const Matrix& b, std::span<const double> bias,
               Matrix& c);

/// C = A · Bᵀ (overwrite). Shapes as gemm_nt_acc.
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);

/// Row-mapped variants for CSR message passing: instead of materializing
/// gathered/scattered copies of the compressed per-relation matrices, the
/// kernels index the mapped operand's rows directly. `rows` must hold
/// distinct valid row indices of the mapped matrix.
///
/// C.row(rows[i]) += A.row(i) · B — scatter-accumulate (rows of C).
void gemm_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                   std::span<const int> rows);

/// C += Aᵀ · B_sel with B_sel.row(p) = b.row(rows[p]) — gathered B.
void gemm_tn_acc_rows(const Matrix& a, const Matrix& b,
                      std::span<const int> rows, Matrix& c);

/// C = A_sel · Bᵀ with A_sel.row(i) = a.row(rows[i]) — gathered A.
void gemm_nt_rows(const Matrix& a, std::span<const int> rows, const Matrix& b,
                  Matrix& c);

namespace detail {

/// Textbook triple-loop reference kernels. Kept (and exported) as the
/// ground truth the property tests in tests/nn_kernels_test.cpp compare
/// the blocked/parallel kernels against.
void gemm_acc_naive(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_tn_acc_naive(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_nt_acc_naive(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace detail

/// Inference precision tier (docs/SERVING.md, "Precision tiers"). f64 is
/// the bit-exact reference — identical to training arithmetic. f32 is the
/// opt-in fast tier: weights and encodings are down-converted once at
/// load/publish and the dense phase runs the float kernels below at twice
/// the SIMD width.
enum class Precision { f64, f32 };

inline const char* precision_name(Precision p) {
  return p == Precision::f32 ? "f32" : "f64";
}

/// Row-major single-precision matrix for the f32 inference tier. Only the
/// forward-pass surface — training stays f64 so gradient checks remain
/// meaningful.
class MatrixF {
 public:
  MatrixF() = default;
  MatrixF(int rows, int cols);

  /// Down-convert an f64 matrix once (load/publish time).
  static MatrixF from(const Matrix& m);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* row(int r) {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const float* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<const float> flat() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// out = xᵀ·W + bias — the dense-layer primitive of the f32 tier. Shapes:
/// x (k), W (k×n), bias (n or empty → 0), out (n). Row-major W is streamed
/// row-by-row with x broadcast, so the hot loop is n-wide FMA at float
/// SIMD width (16 lanes under AVX-512, 8 under AVX2 — double the f64
/// kernels'). Column blocks are independent; the per-column summation
/// order is fixed, so results are deterministic.
void gemv_f32(std::span<const float> x, const MatrixF& w,
              std::span<const float> bias, std::span<float> out);

namespace detail {

/// Scalar reference for gemv_f32 — the ground truth of its property test.
void gemv_f32_naive(std::span<const float> x, const MatrixF& w,
                    std::span<const float> bias, std::span<float> out);

}  // namespace detail

/// Add a bias row vector to every row of m.
void add_bias_rows(Matrix& m, std::span<const double> bias);

/// Accumulate the column sums of m into out (size cols).
void colsum_acc(const Matrix& m, std::span<double> out);

/// Frobenius inner product Σᵢⱼ aᵢⱼ·bᵢⱼ.
double frob_inner(const Matrix& a, const Matrix& b);

}  // namespace pnp::nn
