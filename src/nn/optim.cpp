#include "nn/optim.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pnp::nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::step(std::vector<Param*>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Param* p : params)
      velocity_.push_back(Matrix::zeros(p->w.rows(), p->w.cols()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    if (!p.trainable) continue;
    if (momentum_ > 0.0) {
      Matrix& v = velocity_[i];
      for (std::size_t k = 0; k < v.size(); ++k) {
        v.data()[k] = momentum_ * v.data()[k] + p.g.data()[k];
        p.w.data()[k] -= lr_ * v.data()[k];
      }
    } else {
      p.w.add_scaled(p.g, -lr_);
    }
  }
}

Adam::Adam(Config cfg) : cfg_(cfg) {}

std::unique_ptr<Adam> Adam::adamw_amsgrad(double lr, double weight_decay) {
  Config c;
  c.lr = lr;
  c.weight_decay = weight_decay;
  c.decoupled_weight_decay = true;
  c.amsgrad = true;
  return std::make_unique<Adam>(c);
}

std::unique_ptr<Adam> Adam::plain(double lr) {
  Config c;
  c.lr = lr;
  return std::make_unique<Adam>(c);
}

void Adam::step(std::vector<Param*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    vhat_.clear();
    for (const Param* p : params) {
      m_.push_back(Matrix::zeros(p->w.rows(), p->w.cols()));
      v_.push_back(Matrix::zeros(p->w.rows(), p->w.cols()));
      vhat_.push_back(Matrix::zeros(p->w.rows(), p->w.cols()));
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    if (!p.trainable) continue;
    PNP_CHECK(m_[i].same_shape(p.w));
    double* w = p.w.data();
    const double* g = p.g.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    double* vh = vhat_[i].data();
    for (std::size_t k = 0; k < p.w.size(); ++k) {
      double grad = g[k];
      if (!cfg_.decoupled_weight_decay && cfg_.weight_decay > 0.0)
        grad += cfg_.weight_decay * w[k];  // classic Adam L2
      m[k] = cfg_.beta1 * m[k] + (1.0 - cfg_.beta1) * grad;
      v[k] = cfg_.beta2 * v[k] + (1.0 - cfg_.beta2) * grad * grad;
      const double mhat = m[k] / bc1;
      double vcur = v[k] / bc2;
      if (cfg_.amsgrad) {
        vh[k] = std::max(vh[k], vcur);
        vcur = vh[k];
      }
      if (cfg_.decoupled_weight_decay && cfg_.weight_decay > 0.0)
        w[k] -= cfg_.lr * cfg_.weight_decay * w[k];  // AdamW decay
      w[k] -= cfg_.lr * mhat / (std::sqrt(vcur) + cfg_.eps);
    }
  }
}

}  // namespace pnp::nn
