#include "nn/arena.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace pnp::nn {

namespace {

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

bool lifetimes_overlap(const TensorSpec& a, const TensorSpec& b) {
  return a.first_use <= b.last_use && b.first_use <= a.last_use;
}

}  // namespace

ArenaPlan ArenaPlan::build(std::vector<TensorSpec> specs) {
  for (const TensorSpec& s : specs) {
    PNP_CHECK_MSG(s.last_use >= s.first_use,
                  "arena tensor '" << s.name << "' has last_use "
                                   << s.last_use << " < first_use "
                                   << s.first_use);
    PNP_CHECK_MSG(s.align > 0 && (s.align & (s.align - 1)) == 0,
                  "arena tensor '" << s.name << "' alignment " << s.align
                                   << " is not a power of two");
  }

  // Place largest first so big tensors claim low offsets and small ones
  // fill the gaps; ties broken by first_use then original index so the
  // plan is a deterministic function of the specs.
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    if (specs[i].bytes != specs[j].bytes) return specs[i].bytes > specs[j].bytes;
    if (specs[i].first_use != specs[j].first_use)
      return specs[i].first_use < specs[j].first_use;
    return i < j;
  });

  ArenaPlan plan;
  plan.tensors_.resize(specs.size());
  std::vector<bool> placed(specs.size(), false);
  for (const std::size_t i : order) {
    const TensorSpec& s = specs[i];
    // First-fit: the candidate offsets worth trying are 0 and the aligned
    // end of each conflicting tensor already placed — any other offset is
    // dominated by one of these.
    std::vector<std::size_t> candidates{0};
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (!placed[j] || !lifetimes_overlap(s, specs[j])) continue;
      candidates.push_back(
          align_up(plan.tensors_[j].offset + specs[j].bytes, s.align));
    }
    std::sort(candidates.begin(), candidates.end());
    std::size_t chosen = 0;
    for (const std::size_t cand : candidates) {
      bool clash = false;
      for (std::size_t j = 0; j < specs.size() && !clash; ++j) {
        if (!placed[j] || !lifetimes_overlap(s, specs[j])) continue;
        const std::size_t jo = plan.tensors_[j].offset;
        clash = cand < jo + specs[j].bytes && jo < cand + s.bytes;
      }
      if (!clash) {
        chosen = cand;
        break;
      }
    }
    plan.tensors_[i] = PlannedTensor{s, chosen};
    placed[i] = true;
    plan.total_ = std::max(plan.total_, chosen + s.bytes);
  }
  for (std::size_t i = 0; i < specs.size(); ++i)
    plan.tensors_[i].spec = std::move(specs[i]);
  return plan;
}

void Arena::reset(ArenaPlan plan) {
  plan_ = std::move(plan);
  constexpr std::size_t kAlign = 64;
  storage_.assign(plan_.total_bytes() + kAlign, static_cast<unsigned char>(0));
  const auto addr = reinterpret_cast<std::uintptr_t>(storage_.data());
  base_ = storage_.data() + (align_up(addr, kAlign) - addr);
}

}  // namespace pnp::nn
