#pragma once

/// \file rgcn_net.hpp
/// The PnP tuner's neural network (paper §III-D1, Table II):
///
///   token/kind embedding → 4 × RGCN (LeakyReLU) → mean-pool readout →
///   [⊕ extra features] → 3 × fully-connected (ReLU) → classification heads
///
/// RGCN layer (Schlichtkrull et al., ESWC'18):
///   h'_i = σ( W₀ h_i + Σ_r Σ_{j∈N_r(i)} (1/c_{i,r}) W_r h_j + b )
/// with c_{i,r} = |N_r(i)| and one relation per (flow type, direction).
/// Optional basis decomposition W_r = Σ_b a_{rb} V_b regularizes the
/// per-relation weights (ablation: PnpModelConfig in core).
///
/// The "extra features" slot carries the dynamic variant's inputs: the five
/// normalized PAPI-like counters and/or the normalized power cap
/// (paper §IV-B).
///
/// Backward passes are hand-derived and covered by finite-difference
/// gradient checks in tests/nn_gradcheck_test.cpp.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "graph/flow_graph.hpp"
#include "nn/matrix.hpp"
#include "nn/optim.hpp"

namespace pnp::nn {

struct RgcnNetConfig {
  int vocab_size = 0;  ///< required: graph::Vocabulary::size()
  int emb_dim = 16;
  int rgcn_layers = 4;     ///< Table II: RGCN (4)
  int hidden = 20;         ///< RGCN output width
  int dense_hidden1 = 32;  ///< Table II: FCNN (3) — two hidden + logits
  int dense_hidden2 = 24;
  std::vector<int> head_sizes;  ///< e.g. {6,3,7} threads/schedule/chunk
  int extra_features = 0;       ///< appended to the readout vector
  int num_relations = graph::kNumModelRelations;
  int num_bases = 0;  ///< 0 = full per-relation weights, >0 = basis decomp
  double leaky_slope = 0.01;
  std::uint64_t seed = 42;

  int total_logits() const {
    int s = 0;
    for (int h : head_sizes) s += h;
    return s;
  }
};

class RgcnNet {
 public:
  explicit RgcnNet(RgcnNetConfig cfg);

  /// Cached intermediate state of one GNN forward pass. Doubles as the
  /// forward workspace: encode_into() reuses every buffer in here, so
  /// repeated encodes of same-shaped graphs do zero heap allocation.
  struct GnnCache {
    const graph::GraphTensors* g = nullptr;
    /// H[0] = embedding output … H[L] = final node features (all N×d).
    std::vector<Matrix> H;
    /// Pre-activation of each layer (Z[l] for layer l, 0-based).
    std::vector<Matrix> Z;
    /// Per-layer, per-relation normalized aggregates in CSR-compressed
    /// form: row i of M[l][r] is Â_r·H for the i-th *active* target of
    /// relation r (see graph::RelationCsr::active_dst) — zero rows are
    /// never materialized.
    std::vector<std::vector<Matrix>> M;
    /// Basis mode only: the combined relation weights W_r = Σ_b a_rb·V_b
    /// of each layer, computed once at encode time and shared with the
    /// backward pass (valid for the weights as of that encode).
    std::vector<std::vector<Matrix>> relw;
    /// Mean-pooled readout (length = hidden).
    std::vector<double> readout;
    /// f32 inference tier: the readout down-converted once per encode.
    /// RgcnNet itself never touches this — serve::ModelState fills it when
    /// serving at Precision::f32 so cached encodings carry both tiers.
    std::vector<float> readout_f32;
  };

  /// Cached state of one dense-head forward pass.
  struct DenseCache {
    std::vector<double> u0;      ///< readout ⊕ extra
    std::vector<double> z1, a1;  ///< dense layer 1 pre/post activation
    std::vector<double> z2, a2;  ///< dense layer 2 pre/post activation
    std::vector<double> logits;  ///< concatenated head logits
  };

  /// Scratch matrices for one GNN backward pass; reused across calls so
  /// steady-state training allocates nothing.
  struct BackwardWs {
    Matrix dh, dh_prev;  ///< d(loss)/dH flowing down the layers
    Matrix dz;           ///< activation-gradient of the current layer
    Matrix dmc;          ///< d(loss)/dM_r, compressed rows
    Matrix gr;           ///< basis mode: M_rᵀ·dz shared by coef/basis grads
  };

  /// One gradient matrix per parameter (index-parallel to params()) —
  /// the per-thread accumulation target of the parallel trainer.
  using GradBuffer = std::vector<Matrix>;
  GradBuffer make_grad_buffer() const;
  /// params[i].g += gb[i] for all parameters.
  void add_grad_buffer(const GradBuffer& gb);

  /// Run the GNN over one graph (no gradient effects).
  GnnCache encode(const graph::GraphTensors& g) const;

  /// As encode(), but reusing `cache`'s buffers (zero allocation when the
  /// shapes already match). Safe to call concurrently from several threads
  /// with distinct caches, provided the graph's CSR form has been built
  /// (graph::GraphTensors::finalize()).
  void encode_into(const graph::GraphTensors& g, GnnCache& cache) const;

  /// Run the dense classifier on a readout (+ extra features).
  DenseCache dense_forward(std::span<const double> readout,
                           std::span<const double> extra) const;

  /// As dense_forward(), but reusing `cache`'s buffers.
  void dense_forward_into(std::span<const double> readout,
                          std::span<const double> extra,
                          DenseCache& cache) const;

  /// As dense_forward_into(), but writing into caller-provided buffers of
  /// exactly the right sizes (u0 = dense_in(), z1/a1 = dense_hidden1,
  /// z2/a2 = dense_hidden2, logits = total_logits()). This is the shared
  /// implementation — dense_forward_into() delegates here, so the
  /// arena-backed serving path is bit-identical to the allocation path by
  /// construction.
  void dense_forward_spans(std::span<const double> readout,
                           std::span<const double> extra, std::span<double> u0,
                           std::span<double> z1, std::span<double> a1,
                           std::span<double> z2, std::span<double> a2,
                           std::span<double> logits) const;

  /// The dense stage's weights down-converted once (at load/publish) for
  /// the f32 inference tier.
  struct DenseWeightsF32 {
    MatrixF w1, b1, w2, b2, w3, b3;
  };
  DenseWeightsF32 dense_weights_f32() const;

  /// f32-tier dense forward over pre-converted weights: h1 = relu(u0·w1+b1),
  /// h2 = relu(h1·w2+b2), logits = h2·w3+b3. `u0` is the f32 readout ⊕
  /// extra features, filled by the caller; h1/h2 sizes are dense_hidden1/2.
  /// ReLU runs in place so the f32 tier needs no separate pre-activation
  /// buffers (inference only — no backward pass).
  static void dense_forward_f32(const DenseWeightsF32& w,
                                std::span<const float> u0, std::span<float> h1,
                                std::span<float> h2, std::span<float> logits);

  /// Convenience: encode + dense in one call.
  DenseCache forward(const graph::GraphTensors& g,
                     std::span<const double> extra) const;

  /// Accumulate dense-layer gradients for d(loss)/d(logits); returns
  /// d(loss)/d(readout) for the caller to feed into gnn_backward.
  std::vector<double> dense_backward(const DenseCache& cache,
                                     std::span<const double> dlogits);

  /// As dense_backward(), but accumulating into `grads` instead of the
  /// parameters' own gradients (thread-safe with distinct buffers).
  std::vector<double> dense_backward_into(const DenseCache& cache,
                                          std::span<const double> dlogits,
                                          GradBuffer& grads) const;

  /// Accumulate GNN gradients for d(loss)/d(readout).
  void gnn_backward(const GnnCache& cache, std::span<const double> d_readout);

  /// As gnn_backward(), but accumulating into `grads` with caller-owned
  /// scratch (thread-safe with distinct buffers/workspaces).
  void gnn_backward_into(const GnnCache& cache,
                         std::span<const double> d_readout, GradBuffer& grads,
                         BackwardWs& ws) const;

  /// View of one head's logits inside a DenseCache.
  std::span<const double> head_logits(const DenseCache& cache, int head) const;

  /// Offset of head `head`'s logits inside the concatenated logits vector
  /// (for span/arena-backed callers that slice logits themselves).
  int head_offset(int head) const;

  /// Dense-stage input width: hidden + extra_features.
  int dense_in() const { return cfg_.hidden + cfg_.extra_features; }

  const RgcnNetConfig& config() const { return cfg_; }

  /// All parameters (stable addresses for the optimizer).
  std::vector<Param*> params();

  /// Number of scalar weights (trainable only, or all).
  std::size_t num_weights(bool trainable_only = false) const;

  void zero_grad();

  /// Freeze/unfreeze the GNN stage (embedding + RGCN layers) — the paper's
  /// transfer-learning step retrains only the dense layers (§IV-B).
  void set_gnn_frozen(bool frozen);
  bool gnn_frozen() const { return gnn_frozen_; }

  /// Persistence. `load_gnn_only` restores just the embedding + RGCN
  /// weights (cross-machine transfer where the dense head is re-learned).
  StateDict state_dict() const;
  void load_state_dict(const StateDict& sd, bool load_gnn_only = false);

 private:
  // Parameter handles (indices into params_).
  struct LayerParams {
    int w0 = -1;
    int bias = -1;
    std::vector<int> wr;     // full mode: one per relation
    std::vector<int> basis;  // basis mode: num_bases matrices
    int coef = -1;           // basis mode: (relations × bases)
  };

  Param& P(int idx) { return *params_[static_cast<std::size_t>(idx)]; }
  const Param& P(int idx) const { return *params_[static_cast<std::size_t>(idx)]; }
  int add_param(const std::string& name, Matrix m, bool gnn_stage);

  /// Effective relation weight: a reference to the parameter itself in
  /// full mode, or `scratch` filled with the basis combination.
  const Matrix& relation_weight(const LayerParams& lp, int relation,
                                Matrix& scratch) const;

  template <class GetGrad>
  std::vector<double> dense_backward_impl(const DenseCache& cache,
                                          std::span<const double> dlogits,
                                          GetGrad&& G) const;
  template <class GetGrad>
  void gnn_backward_impl(const GnnCache& cache,
                         std::span<const double> d_readout, BackwardWs& ws,
                         GetGrad&& G) const;

  RgcnNetConfig cfg_;
  std::vector<std::unique_ptr<Param>> params_;
  std::vector<bool> is_gnn_param_;
  bool gnn_frozen_ = false;

  int emb_token_ = -1;
  int emb_kind_ = -1;
  std::vector<LayerParams> layers_;
  int w1_ = -1, b1_ = -1, w2_ = -1, b2_ = -1, w3_ = -1, b3_ = -1;
  std::vector<int> head_offset_;

  /// Default backward scratch for the sequential gnn_backward() overload.
  BackwardWs bws_;
};

}  // namespace pnp::nn
