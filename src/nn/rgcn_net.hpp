#pragma once

/// \file rgcn_net.hpp
/// The PnP tuner's neural network (paper §III-D1, Table II):
///
///   token/kind embedding → 4 × RGCN (LeakyReLU) → mean-pool readout →
///   [⊕ extra features] → 3 × fully-connected (ReLU) → classification heads
///
/// RGCN layer (Schlichtkrull et al., ESWC'18):
///   h'_i = σ( W₀ h_i + Σ_r Σ_{j∈N_r(i)} (1/c_{i,r}) W_r h_j + b )
/// with c_{i,r} = |N_r(i)| and one relation per (flow type, direction).
/// Optional basis decomposition W_r = Σ_b a_{rb} V_b regularizes the
/// per-relation weights (ablation: PnpModelConfig in core).
///
/// The "extra features" slot carries the dynamic variant's inputs: the five
/// normalized PAPI-like counters and/or the normalized power cap
/// (paper §IV-B).
///
/// Backward passes are hand-derived and covered by finite-difference
/// gradient checks in tests/nn_gradcheck_test.cpp.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "graph/flow_graph.hpp"
#include "nn/matrix.hpp"
#include "nn/optim.hpp"

namespace pnp::nn {

struct RgcnNetConfig {
  int vocab_size = 0;  ///< required: graph::Vocabulary::size()
  int emb_dim = 16;
  int rgcn_layers = 4;     ///< Table II: RGCN (4)
  int hidden = 20;         ///< RGCN output width
  int dense_hidden1 = 32;  ///< Table II: FCNN (3) — two hidden + logits
  int dense_hidden2 = 24;
  std::vector<int> head_sizes;  ///< e.g. {6,3,7} threads/schedule/chunk
  int extra_features = 0;       ///< appended to the readout vector
  int num_relations = graph::kNumModelRelations;
  int num_bases = 0;  ///< 0 = full per-relation weights, >0 = basis decomp
  double leaky_slope = 0.01;
  std::uint64_t seed = 42;

  int total_logits() const {
    int s = 0;
    for (int h : head_sizes) s += h;
    return s;
  }
};

class RgcnNet {
 public:
  explicit RgcnNet(RgcnNetConfig cfg);

  /// Cached intermediate state of one GNN forward pass.
  struct GnnCache {
    const graph::GraphTensors* g = nullptr;
    /// H[0] = embedding output … H[L] = final node features (all N×d).
    std::vector<Matrix> H;
    /// Pre-activation of each layer (Z[l] for layer l, 0-based).
    std::vector<Matrix> Z;
    /// Per-layer, per-relation normalized aggregates M_r = Â_r · H.
    std::vector<std::vector<Matrix>> M;
    /// Per-relation in-degrees (normalization constants), shared by layers.
    std::vector<std::vector<int>> deg;
    /// Mean-pooled readout (length = hidden).
    std::vector<double> readout;
  };

  /// Cached state of one dense-head forward pass.
  struct DenseCache {
    std::vector<double> u0;      ///< readout ⊕ extra
    std::vector<double> z1, a1;  ///< dense layer 1 pre/post activation
    std::vector<double> z2, a2;  ///< dense layer 2 pre/post activation
    std::vector<double> logits;  ///< concatenated head logits
  };

  /// Run the GNN over one graph (no gradient effects).
  GnnCache encode(const graph::GraphTensors& g) const;

  /// Run the dense classifier on a readout (+ extra features).
  DenseCache dense_forward(std::span<const double> readout,
                           std::span<const double> extra) const;

  /// Convenience: encode + dense in one call.
  DenseCache forward(const graph::GraphTensors& g,
                     std::span<const double> extra) const;

  /// Accumulate dense-layer gradients for d(loss)/d(logits); returns
  /// d(loss)/d(readout) for the caller to feed into gnn_backward.
  std::vector<double> dense_backward(const DenseCache& cache,
                                     std::span<const double> dlogits);

  /// Accumulate GNN gradients for d(loss)/d(readout).
  void gnn_backward(const GnnCache& cache, std::span<const double> d_readout);

  /// View of one head's logits inside a DenseCache.
  std::span<const double> head_logits(const DenseCache& cache, int head) const;

  const RgcnNetConfig& config() const { return cfg_; }

  /// All parameters (stable addresses for the optimizer).
  std::vector<Param*> params();

  /// Number of scalar weights (trainable only, or all).
  std::size_t num_weights(bool trainable_only = false) const;

  void zero_grad();

  /// Freeze/unfreeze the GNN stage (embedding + RGCN layers) — the paper's
  /// transfer-learning step retrains only the dense layers (§IV-B).
  void set_gnn_frozen(bool frozen);
  bool gnn_frozen() const { return gnn_frozen_; }

  /// Persistence. `load_gnn_only` restores just the embedding + RGCN
  /// weights (cross-machine transfer where the dense head is re-learned).
  StateDict state_dict() const;
  void load_state_dict(const StateDict& sd, bool load_gnn_only = false);

 private:
  // Parameter handles (indices into params_).
  struct LayerParams {
    int w0 = -1;
    int bias = -1;
    std::vector<int> wr;     // full mode: one per relation
    std::vector<int> basis;  // basis mode: num_bases matrices
    int coef = -1;           // basis mode: (relations × bases)
  };

  Param& P(int idx) { return *params_[static_cast<std::size_t>(idx)]; }
  const Param& P(int idx) const { return *params_[static_cast<std::size_t>(idx)]; }
  int add_param(const std::string& name, Matrix m, bool gnn_stage);

  /// Effective relation weight (composes basis if enabled).
  Matrix relation_weight(const LayerParams& lp, int relation) const;

  RgcnNetConfig cfg_;
  std::vector<std::unique_ptr<Param>> params_;
  std::vector<bool> is_gnn_param_;
  bool gnn_frozen_ = false;

  int emb_token_ = -1;
  int emb_kind_ = -1;
  std::vector<LayerParams> layers_;
  int w1_ = -1, b1_ = -1, w2_ = -1, b2_ = -1, w3_ = -1, b3_ = -1;
  std::vector<int> head_offset_;
};

}  // namespace pnp::nn
