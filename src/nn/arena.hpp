#pragma once

/// \file arena.hpp
/// Static workspace planning for the serving fast path: given the set of
/// scratch tensors one request touches — each with a byte size and a
/// [first_use, last_use] step interval — lay them into ONE contiguous
/// block, reusing bytes between tensors whose lifetimes never overlap
/// (interval-graph coloring in the style of MIGraphX's
/// memory_coloring_impl). Steady-state serving then does zero heap
/// allocations per request and touches a single hot, cache-resident
/// arena instead of eight scattered vectors.
///
/// The planner is deliberately generic (byte sizes + step intervals, no
/// knowledge of the network): serve::ModelState enumerates the dense-phase
/// scratch tensors of run_heads and their use steps, and tests drive the
/// planner with random interval sets to check the two safety properties —
/// tensors with overlapping lifetimes never share bytes, and the arena is
/// never larger than the sum of the individual (aligned) sizes.

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace pnp::nn {

/// One scratch tensor's reservation: how many bytes it needs, its
/// alignment, and the step interval during which it holds live data.
/// Steps are abstract integers (0, 1, 2, … in execution order); a tensor
/// is live on every step in [first_use, last_use], inclusive. Two tensors
/// conflict — must not share bytes — iff their intervals intersect.
struct TensorSpec {
  std::string name;        ///< diagnostic only
  std::size_t bytes = 0;   ///< 0 is allowed (e.g. an empty feature slot)
  int first_use = 0;       ///< step of the first write
  int last_use = 0;        ///< step of the last read (>= first_use)
  std::size_t align = 64;  ///< power of two; 64 keeps tensors line-aligned
};

/// A planned tensor: its spec plus the byte offset assigned in the arena.
struct PlannedTensor {
  TensorSpec spec;
  std::size_t offset = 0;
};

/// The result of planning: per-tensor offsets (in the ORIGINAL spec
/// order, so callers can index by the enum they built the specs with) and
/// the total arena size.
class ArenaPlan {
 public:
  ArenaPlan() = default;

  /// Assign offsets with lifetime-based reuse. Tensors are placed largest
  /// first; each takes the lowest aligned offset that does not overlap
  /// any already-placed tensor with a conflicting lifetime (first-fit).
  /// The plan is a pure function of the specs. Throws pnp::Error on a
  /// malformed spec (last_use < first_use, non-power-of-two alignment).
  static ArenaPlan build(std::vector<TensorSpec> specs);

  std::size_t size() const { return tensors_.size(); }
  bool empty() const { return tensors_.empty(); }
  const PlannedTensor& at(std::size_t i) const {
    PNP_CHECK_MSG(i < tensors_.size(),
                  "arena tensor index " << i << " out of range [0, "
                                        << tensors_.size() << ")");
    return tensors_[i];
  }
  std::size_t offset(std::size_t i) const { return at(i).offset; }

  /// Bytes the arena must hold (max over tensors of offset + bytes).
  std::size_t total_bytes() const { return total_; }

 private:
  std::vector<PlannedTensor> tensors_;
  std::size_t total_ = 0;
};

/// One contiguous, 64-byte-aligned buffer realized from a plan, with
/// typed views of each planned tensor. reset() re-plans (allocating) —
/// intended only for first use and model reloads; between resets every
/// view is stable and no member function allocates.
class Arena {
 public:
  Arena() = default;
  explicit Arena(ArenaPlan plan) { reset(std::move(plan)); }

  void reset(ArenaPlan plan);

  const ArenaPlan& plan() const { return plan_; }
  std::size_t bytes() const { return plan_.total_bytes(); }

  /// Raw pointer to planned tensor `i`, cast to T*. The tensor's byte
  /// size must be a multiple of sizeof(T) and its alignment at least
  /// alignof(T) (checked).
  template <class T>
  T* data(std::size_t i) {
    const PlannedTensor& t = plan_.at(i);
    PNP_CHECK_MSG(t.spec.bytes % sizeof(T) == 0 &&
                      t.spec.align % alignof(T) == 0,
                  "arena tensor '" << t.spec.name << "' (" << t.spec.bytes
                                   << " bytes, align " << t.spec.align
                                   << ") is not viewable as this type");
    return reinterpret_cast<T*>(base_ + t.offset);
  }

  template <class T>
  const T* data(std::size_t i) const {
    const PlannedTensor& t = plan_.at(i);
    PNP_CHECK_MSG(t.spec.bytes % sizeof(T) == 0 &&
                      t.spec.align % alignof(T) == 0,
                  "arena tensor '" << t.spec.name << "' (" << t.spec.bytes
                                   << " bytes, align " << t.spec.align
                                   << ") is not viewable as this type");
    return reinterpret_cast<const T*>(base_ + t.offset);
  }

  /// Number of T elements planned tensor `i` holds.
  template <class T>
  std::size_t count(std::size_t i) const {
    return plan_.at(i).spec.bytes / sizeof(T);
  }

 private:
  ArenaPlan plan_;
  std::vector<unsigned char> storage_;  ///< total_bytes() + alignment slack
  unsigned char* base_ = nullptr;       ///< 64-byte-aligned start
};

}  // namespace pnp::nn
