#include "nn/trainer.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <unordered_map>

#ifdef PNP_PARALLEL
#include <omp.h>
#endif

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace pnp::nn {

namespace {

/// Scale all accumulated gradients by `s` (used to mean-reduce a batch).
void scale_grads(RgcnNet& net, double s) {
  for (Param* p : net.params())
    for (double& g : p->g.flat()) g *= s;
}

/// Reusable per-worker state: forward/backward workspaces plus the small
/// per-member scratch vectors, so the hot GNN passes allocate nothing in
/// steady state (the tiny dense-layer backward still makes a few
/// ≤32-element vector allocations per member).
struct SampleCtx {
  RgcnNet::GnnCache gc;
  RgcnNet::DenseCache dc;
  RgcnNet::BackwardWs ws;
  std::vector<double> d_readout;
  std::vector<double> dlogits;
};

/// Forward + backward of one sample group; returns summed member loss.
/// Gradients go into `grads` when set (the parallel per-thread path, which
/// only calls const members of `net`), or straight into the net otherwise.
double sample_backward(RgcnNet& net, const TrainSample& s,
                       const RgcnNet::GnnCache& gc, SampleCtx& ctx,
                       RgcnNet::GradBuffer* grads) {
  const int hidden = net.config().hidden;
  ctx.d_readout.assign(static_cast<std::size_t>(hidden), 0.0);
  double loss = 0.0;
  for (const SampleMember& m : s.members) {
    net.dense_forward_into(gc.readout, m.extra, ctx.dc);
    ctx.dlogits.assign(ctx.dc.logits.size(), 0.0);
    PNP_CHECK(m.labels.size() == net.config().head_sizes.size());
    int off = 0;
    for (std::size_t h = 0; h < m.labels.size(); ++h) {
      const int len = net.config().head_sizes[h];
      loss += softmax_cross_entropy(
          std::span<const double>(ctx.dc.logits)
              .subspan(static_cast<std::size_t>(off),
                       static_cast<std::size_t>(len)),
          m.labels[h],
          std::span<double>(ctx.dlogits)
              .subspan(static_cast<std::size_t>(off),
                       static_cast<std::size_t>(len)));
      off += len;
    }
    const auto dr = grads
                        ? net.dense_backward_into(ctx.dc, ctx.dlogits, *grads)
                        : net.dense_backward(ctx.dc, ctx.dlogits);
    for (std::size_t d = 0; d < ctx.d_readout.size(); ++d)
      ctx.d_readout[d] += dr[d];
  }
  if (grads)
    net.gnn_backward_into(gc, ctx.d_readout, *grads, ctx.ws);
  else
    net.gnn_backward(gc, ctx.d_readout);
  return loss;
}

}  // namespace

TrainReport train(RgcnNet& net, Optimizer& opt,
                  std::span<const TrainSample> samples,
                  const TrainerConfig& cfg) {
  PNP_CHECK_MSG(!samples.empty(), "no training samples");
  const auto t0 = std::chrono::steady_clock::now();

  // Validate up front and make sure every graph's CSR form exists before
  // any parallel region touches it (lazy builds are not thread-safe).
  for (const TrainSample& s : samples) {
    PNP_CHECK(s.graph != nullptr && !s.members.empty());
    s.graph->finalize();
  }

  // Frozen-GNN encode cache (keyed by graph pointer), filled once up front
  // so epochs only do (cheap) dense passes and threads share it read-only.
  std::unordered_map<const graph::GraphTensors*, RgcnNet::GnnCache>
      frozen_cache;
  if (net.gnn_frozen()) {
    for (const TrainSample& s : samples) {
      auto [it, inserted] = frozen_cache.try_emplace(s.graph);
      if (inserted) net.encode_into(*s.graph, it->second);
    }
  }

#ifdef PNP_PARALLEL
  // Inside an active parallel region (e.g. concurrent LOOCV folds) a
  // nested omp-for would get a team of one — keep the sequential path and
  // skip the per-thread buffers there.
  const int num_workers = omp_in_parallel() ? 1 : omp_get_max_threads();
#else
  const int num_workers = 1;
#endif
  std::vector<SampleCtx> ctx(static_cast<std::size_t>(num_workers));
  // Parallel mode: per-thread gradient buffers, reduced in fixed thread
  // order after each batch. With OpenMP's static schedule the sample →
  // thread assignment is deterministic, so training is bit-reproducible
  // run to run for a given thread count.
  std::vector<RgcnNet::GradBuffer> thread_grads;
  if (num_workers > 1)
    for (int t = 0; t < num_workers; ++t)
      thread_grads.push_back(net.make_grad_buffer());

  Rng rng(cfg.seed);
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto param_ptrs = net.params();

  TrainReport report;
  double best_loss = 1e300;
  int stale = 0;

  std::vector<const TrainSample*> batch;
  std::vector<double> batch_loss;

  // Gradient of one staged batch, accumulated into the net; returns the
  // batch's summed member loss (summed in sample order regardless of the
  // thread count, so early stopping sees a deterministic value).
  auto batch_backward = [&]() -> double {
    batch_loss.assign(batch.size(), 0.0);
#ifdef PNP_PARALLEL
    const int nb = static_cast<int>(batch.size());
    if (num_workers > 1 && nb > 1) {
      std::exception_ptr err;
#pragma omp parallel for schedule(static)
      for (int i = 0; i < nb; ++i) {
        const auto t = static_cast<std::size_t>(omp_get_thread_num());
        try {
          const TrainSample& s = *batch[static_cast<std::size_t>(i)];
          const RgcnNet::GnnCache* gc = nullptr;
          if (net.gnn_frozen()) {
            gc = &frozen_cache.at(s.graph);
          } else {
            net.encode_into(*s.graph, ctx[t].gc);
            gc = &ctx[t].gc;
          }
          batch_loss[static_cast<std::size_t>(i)] =
              sample_backward(net, s, *gc, ctx[t], &thread_grads[t]);
        } catch (...) {
#pragma omp critical
          if (!err) err = std::current_exception();
        }
      }
      if (err) std::rethrow_exception(err);
      for (auto& tg : thread_grads) {
        net.add_grad_buffer(tg);
        for (Matrix& m : tg) m.zero();
      }
    } else
#endif
    {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const TrainSample& s = *batch[i];
        const RgcnNet::GnnCache* gc = nullptr;
        if (net.gnn_frozen()) {
          gc = &frozen_cache.at(s.graph);
        } else {
          net.encode_into(*s.graph, ctx[0].gc);
          gc = &ctx[0].gc;
        }
        batch_loss[i] = sample_backward(net, s, *gc, ctx[0], nullptr);
      }
    }
    double loss = 0.0;
    for (double v : batch_loss) loss += v;
    return loss;
  };

  for (int epoch = 0; epoch < cfg.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t total_members = 0;

    net.zero_grad();
    batch.clear();
    int batch_members = 0;
    auto flush = [&]() {
      if (batch_members == 0) return;
      epoch_loss += batch_backward();
      scale_grads(net, 1.0 / batch_members);
      opt.step(param_ptrs);
      net.zero_grad();
      batch.clear();
      batch_members = 0;
    };

    for (std::size_t oi : order) {
      const TrainSample& s = samples[oi];
      batch.push_back(&s);
      total_members += s.members.size();
      batch_members += static_cast<int>(s.members.size());
      if (batch_members >= cfg.batch_size) flush();
    }
    flush();

    const double mean_loss = epoch_loss / static_cast<double>(total_members);
    report.epoch_loss.push_back(mean_loss);
    if (cfg.verbose)
      std::printf("epoch %3d  loss %.4f\n", epoch, mean_loss);

    if (mean_loss < best_loss - 1e-4) {
      best_loss = mean_loss;
      stale = 0;
    } else {
      ++stale;
    }
    if (mean_loss < cfg.min_loss || stale >= cfg.patience) break;
  }

  report.epochs_run = static_cast<int>(report.epoch_loss.size());
  report.final_loss = report.epoch_loss.back();
  report.train_accuracy = evaluate_accuracy(net, samples);
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

double evaluate_accuracy(const RgcnNet& net,
                         std::span<const TrainSample> samples) {
  std::size_t correct = 0, total = 0;
  // One encode per distinct graph — samples sharing a graph (e.g. the four
  // power caps of one region) reuse the cached pass, as train() does. Only
  // the readout is kept per graph; one workspace serves every encode.
  std::unordered_map<const graph::GraphTensors*, std::vector<double>>
      readouts;
  RgcnNet::GnnCache ws;
  RgcnNet::DenseCache dc;
  for (const TrainSample& s : samples) {
    PNP_CHECK(s.graph != nullptr);
    auto [it, inserted] = readouts.try_emplace(s.graph);
    if (inserted) {
      net.encode_into(*s.graph, ws);
      it->second = ws.readout;
    }
    for (const SampleMember& m : s.members) {
      net.dense_forward_into(it->second, m.extra, dc);
      bool all = true;
      for (std::size_t h = 0; h < m.labels.size(); ++h) {
        const auto logits = net.head_logits(dc, static_cast<int>(h));
        if (argmax_index(logits) != m.labels[h]) {
          all = false;
          break;
        }
      }
      correct += all ? 1 : 0;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

std::vector<int> predict_labels(const RgcnNet& net,
                                const graph::GraphTensors& g,
                                std::span<const double> extra) {
  const auto dc = net.forward(g, extra);
  std::vector<int> out;
  out.reserve(net.config().head_sizes.size());
  for (std::size_t h = 0; h < net.config().head_sizes.size(); ++h)
    out.push_back(argmax_index(net.head_logits(dc, static_cast<int>(h))));
  return out;
}

}  // namespace pnp::nn
