#include "nn/trainer.hpp"

#include <chrono>
#include <cstdio>
#include <map>

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace pnp::nn {

namespace {

/// Scale all accumulated gradients by `s` (used to mean-reduce a batch).
void scale_grads(RgcnNet& net, double s) {
  for (Param* p : net.params())
    for (double& g : p->g.flat()) g *= s;
}

/// Forward + backward of one sample group; returns summed member loss.
/// Gradients are accumulated into the net.
double sample_backward(RgcnNet& net, const TrainSample& s,
                       const RgcnNet::GnnCache& gc) {
  const int hidden = net.config().hidden;
  std::vector<double> d_readout(static_cast<std::size_t>(hidden), 0.0);
  double loss = 0.0;
  for (const SampleMember& m : s.members) {
    const auto dc = net.dense_forward(gc.readout, m.extra);
    std::vector<double> dlogits(dc.logits.size(), 0.0);
    PNP_CHECK(m.labels.size() == net.config().head_sizes.size());
    int off = 0;
    for (std::size_t h = 0; h < m.labels.size(); ++h) {
      const int len = net.config().head_sizes[h];
      loss += softmax_cross_entropy(
          std::span<const double>(dc.logits)
              .subspan(static_cast<std::size_t>(off),
                       static_cast<std::size_t>(len)),
          m.labels[h],
          std::span<double>(dlogits).subspan(static_cast<std::size_t>(off),
                                             static_cast<std::size_t>(len)));
      off += len;
    }
    const auto dr = net.dense_backward(dc, dlogits);
    for (std::size_t d = 0; d < d_readout.size(); ++d) d_readout[d] += dr[d];
  }
  net.gnn_backward(gc, d_readout);
  return loss;
}

}  // namespace

TrainReport train(RgcnNet& net, Optimizer& opt,
                  std::span<const TrainSample> samples,
                  const TrainerConfig& cfg) {
  PNP_CHECK_MSG(!samples.empty(), "no training samples");
  const auto t0 = std::chrono::steady_clock::now();

  // Frozen-GNN encode cache (keyed by graph pointer).
  std::map<const graph::GraphTensors*, RgcnNet::GnnCache> frozen_cache;

  Rng rng(cfg.seed);
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto param_ptrs = net.params();

  TrainReport report;
  double best_loss = 1e300;
  int stale = 0;

  for (int epoch = 0; epoch < cfg.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t total_members = 0;

    net.zero_grad();
    int batch_members = 0;
    auto flush = [&]() {
      if (batch_members == 0) return;
      scale_grads(net, 1.0 / batch_members);
      opt.step(param_ptrs);
      net.zero_grad();
      batch_members = 0;
    };

    for (std::size_t oi : order) {
      const TrainSample& s = samples[oi];
      PNP_CHECK(s.graph != nullptr && !s.members.empty());

      const RgcnNet::GnnCache* gc = nullptr;
      RgcnNet::GnnCache local;
      if (net.gnn_frozen()) {
        auto it = frozen_cache.find(s.graph);
        if (it == frozen_cache.end())
          it = frozen_cache.emplace(s.graph, net.encode(*s.graph)).first;
        gc = &it->second;
      } else {
        local = net.encode(*s.graph);
        gc = &local;
      }

      epoch_loss += sample_backward(net, s, *gc);
      total_members += s.members.size();
      batch_members += static_cast<int>(s.members.size());
      if (batch_members >= cfg.batch_size) flush();
    }
    flush();

    const double mean_loss = epoch_loss / static_cast<double>(total_members);
    report.epoch_loss.push_back(mean_loss);
    if (cfg.verbose)
      std::printf("epoch %3d  loss %.4f\n", epoch, mean_loss);

    if (mean_loss < best_loss - 1e-4) {
      best_loss = mean_loss;
      stale = 0;
    } else {
      ++stale;
    }
    if (mean_loss < cfg.min_loss || stale >= cfg.patience) break;
  }

  report.epochs_run = static_cast<int>(report.epoch_loss.size());
  report.final_loss = report.epoch_loss.back();
  report.train_accuracy = evaluate_accuracy(net, samples);
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

double evaluate_accuracy(const RgcnNet& net,
                         std::span<const TrainSample> samples) {
  std::size_t correct = 0, total = 0;
  for (const TrainSample& s : samples) {
    const auto gc = net.encode(*s.graph);
    for (const SampleMember& m : s.members) {
      const auto dc = net.dense_forward(gc.readout, m.extra);
      bool all = true;
      for (std::size_t h = 0; h < m.labels.size(); ++h) {
        const auto logits = net.head_logits(dc, static_cast<int>(h));
        if (argmax_index(logits) != m.labels[h]) {
          all = false;
          break;
        }
      }
      correct += all ? 1 : 0;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

std::vector<int> predict_labels(const RgcnNet& net,
                                const graph::GraphTensors& g,
                                std::span<const double> extra) {
  const auto dc = net.forward(g, extra);
  std::vector<int> out;
  out.reserve(net.config().head_sizes.size());
  for (std::size_t h = 0; h < net.config().head_sizes.size(); ++h)
    out.push_back(argmax_index(net.head_logits(dc, static_cast<int>(h))));
  return out;
}

}  // namespace pnp::nn
