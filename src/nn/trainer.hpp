#pragma once

/// \file trainer.hpp
/// Mini-batch training loop for RgcnNet.
///
/// Samples are grouped by graph: all members of a group (e.g. the four
/// power caps of one OpenMP region in scenario 1) share a single GNN
/// forward/backward pass, with per-member dense passes — mathematically
/// identical to independent samples, but ~4× cheaper on the GNN stage.
///
/// When the GNN stage is frozen (transfer learning, paper §IV-B), encode()
/// results are cached across epochs, which is where the paper's reported
/// 4.18× training-time reduction comes from.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/flow_graph.hpp"
#include "nn/optim.hpp"
#include "nn/rgcn_net.hpp"

namespace pnp::nn {

/// One (extra-features, labels) pair attached to a graph.
struct SampleMember {
  std::vector<double> extra;  ///< length = RgcnNetConfig::extra_features
  std::vector<int> labels;    ///< one label per head
};

/// A graph and its attached members.
struct TrainSample {
  const graph::GraphTensors* graph = nullptr;
  std::vector<SampleMember> members;
};

struct TrainerConfig {
  int max_epochs = 80;
  int batch_size = 16;  ///< members per optimizer step (Table II)
  int patience = 12;    ///< early-stop after this many non-improving epochs
  double min_loss = 1e-2;  ///< early-stop when mean loss drops below this
  std::uint64_t seed = 1234;
  bool verbose = false;
};

struct TrainReport {
  std::vector<double> epoch_loss;  ///< mean per-member loss per epoch
  int epochs_run = 0;
  double final_loss = 0.0;
  double train_accuracy = 0.0;  ///< exact-match over all heads
  double seconds = 0.0;         ///< wall-clock training time
};

/// Train `net` in place. Loss = sum of per-head softmax cross-entropies.
TrainReport train(RgcnNet& net, Optimizer& opt,
                  std::span<const TrainSample> samples,
                  const TrainerConfig& cfg);

/// Exact-match accuracy of `net` on `samples` (all heads must match).
double evaluate_accuracy(const RgcnNet& net,
                         std::span<const TrainSample> samples);

/// Predicted label per head for one graph + extra features.
std::vector<int> predict_labels(const RgcnNet& net,
                                const graph::GraphTensors& g,
                                std::span<const double> extra);

}  // namespace pnp::nn
