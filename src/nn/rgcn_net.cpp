#include "nn/rgcn_net.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pnp::nn {

namespace {

inline double leaky(double x, double slope) { return x > 0.0 ? x : slope * x; }
inline double leaky_grad(double x, double slope) { return x > 0.0 ? 1.0 : slope; }
inline double relu(double x) { return x > 0.0 ? x : 0.0; }
inline double relu_grad(double x) { return x > 0.0 ? 1.0 : 0.0; }

}  // namespace

int RgcnNet::add_param(const std::string& name, Matrix m, bool gnn_stage) {
  params_.push_back(std::make_unique<Param>(name, std::move(m)));
  is_gnn_param_.push_back(gnn_stage);
  return static_cast<int>(params_.size()) - 1;
}

RgcnNet::RgcnNet(RgcnNetConfig cfg) : cfg_(std::move(cfg)) {
  PNP_CHECK_MSG(cfg_.vocab_size > 0, "vocab_size must be set");
  PNP_CHECK_MSG(!cfg_.head_sizes.empty(), "head_sizes must be set");
  PNP_CHECK(cfg_.rgcn_layers >= 1 && cfg_.num_relations >= 1);

  Rng rng(cfg_.seed);

  emb_token_ = add_param("emb.token",
                         Matrix::xavier(cfg_.vocab_size, cfg_.emb_dim, rng),
                         /*gnn_stage=*/true);
  emb_kind_ = add_param("emb.kind",
                        Matrix::xavier(graph::kNumNodeKinds, cfg_.emb_dim, rng),
                        true);

  for (int l = 0; l < cfg_.rgcn_layers; ++l) {
    const int d_in = (l == 0) ? cfg_.emb_dim : cfg_.hidden;
    const int d_out = cfg_.hidden;
    LayerParams lp;
    const std::string prefix = "rgcn." + std::to_string(l) + ".";
    lp.w0 = add_param(prefix + "w0", Matrix::xavier(d_in, d_out, rng), true);
    lp.bias = add_param(prefix + "bias", Matrix::zeros(1, d_out), true);
    if (cfg_.num_bases > 0) {
      for (int b = 0; b < cfg_.num_bases; ++b)
        lp.basis.push_back(add_param(prefix + "basis." + std::to_string(b),
                                     Matrix::xavier(d_in, d_out, rng), true));
      lp.coef = add_param(prefix + "coef",
                          Matrix::xavier(cfg_.num_relations, cfg_.num_bases, rng),
                          true);
    } else {
      for (int r = 0; r < cfg_.num_relations; ++r)
        lp.wr.push_back(add_param(prefix + "wr." + std::to_string(r),
                                  Matrix::xavier(d_in, d_out, rng), true));
    }
    layers_.push_back(lp);
  }

  const int dense_in = cfg_.hidden + cfg_.extra_features;
  w1_ = add_param("dense.w1", Matrix::xavier(dense_in, cfg_.dense_hidden1, rng),
                  false);
  b1_ = add_param("dense.b1", Matrix::zeros(1, cfg_.dense_hidden1), false);
  w2_ = add_param("dense.w2",
                  Matrix::xavier(cfg_.dense_hidden1, cfg_.dense_hidden2, rng),
                  false);
  b2_ = add_param("dense.b2", Matrix::zeros(1, cfg_.dense_hidden2), false);
  w3_ = add_param("dense.w3",
                  Matrix::xavier(cfg_.dense_hidden2, cfg_.total_logits(), rng),
                  false);
  b3_ = add_param("dense.b3", Matrix::zeros(1, cfg_.total_logits()), false);

  int off = 0;
  for (int h : cfg_.head_sizes) {
    head_offset_.push_back(off);
    off += h;
  }
}

const Matrix& RgcnNet::relation_weight(const LayerParams& lp, int relation,
                                       Matrix& scratch) const {
  if (cfg_.num_bases == 0)
    return P(lp.wr[static_cast<std::size_t>(relation)]).w;
  const Matrix& coef = P(lp.coef).w;
  scratch.resize(P(lp.basis[0]).w.rows(), P(lp.basis[0]).w.cols());
  scratch.zero();
  for (int b = 0; b < cfg_.num_bases; ++b)
    scratch.add_scaled(P(lp.basis[static_cast<std::size_t>(b)]).w,
                       coef(relation, b));
  return scratch;
}

RgcnNet::GnnCache RgcnNet::encode(const graph::GraphTensors& g) const {
  GnnCache cache;
  encode_into(g, cache);
  return cache;
}

void RgcnNet::encode_into(const graph::GraphTensors& g,
                          GnnCache& cache) const {
  PNP_CHECK_MSG(g.num_nodes > 0, "cannot encode an empty graph");
  const int n = g.num_nodes;
  const int L = cfg_.rgcn_layers;
  const auto nrel = static_cast<std::size_t>(cfg_.num_relations);
  cache.g = &g;
  cache.H.resize(static_cast<std::size_t>(L) + 1);
  cache.Z.resize(static_cast<std::size_t>(L));
  cache.M.resize(static_cast<std::size_t>(L));
  if (cfg_.num_bases > 0) cache.relw.resize(static_cast<std::size_t>(L));

  // Embedding: H0[i] = emb_token[token_i] + emb_kind[kind_i].
  Matrix& h0 = cache.H[0];
  h0.resize(n, cfg_.emb_dim);
  const Matrix& et = P(emb_token_).w;
  const Matrix& ek = P(emb_kind_).w;
  for (int i = 0; i < n; ++i) {
    const int tok = g.token[static_cast<std::size_t>(i)];
    const int kind = g.kind[static_cast<std::size_t>(i)];
    PNP_CHECK(tok >= 0 && tok < cfg_.vocab_size);
    const double* trow = et.row(tok);
    const double* krow = ek.row(kind);
    double* out = h0.row(i);
    for (int d = 0; d < cfg_.emb_dim; ++d) out[d] = trow[d] + krow[d];
  }

  for (int l = 0; l < L; ++l) {
    const auto li = static_cast<std::size_t>(l);
    const Matrix& h = cache.H[li];
    const LayerParams& lp = layers_[li];
    const int d_in = h.cols();

    auto& ms = cache.M[li];
    ms.resize(nrel);
    if (cfg_.num_bases > 0) cache.relw[li].resize(nrel);

    // Self-loop term with the bias folded into the kernel's C-tile init:
    // Z = H·W₀ + b, relations then accumulate on top.
    Matrix& z = cache.Z[li];
    z.resize(n, cfg_.hidden);
    gemm_bias(h, P(lp.w0).w, P(lp.bias).w.flat(), z);

    for (int r = 0; r < cfg_.num_relations; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const graph::RelationCsr& csr = g.csr(r);
      const int active = csr.num_active();

      // CSR aggregation, compressed to active targets:
      // M_r[i] = (1/c_{t,r}) Σ_{s∈N_r(t)} h[s] for t = active_dst[i].
      Matrix& mc = ms[ri];
      mc.resize(active, d_in);
      for (int idx = 0; idx < active; ++idx) {
        const auto dst =
            static_cast<std::size_t>(csr.active_dst[static_cast<std::size_t>(idx)]);
        const int b0 = csr.row_offset[dst];
        const int b1 = csr.row_offset[dst + 1];
        const double inv = csr.inv_deg[dst];
        double* out = mc.row(idx);
        const double* hs = h.row(csr.src[static_cast<std::size_t>(b0)]);
        for (int d = 0; d < d_in; ++d) out[d] = inv * hs[d];
        for (int e = b0 + 1; e < b1; ++e) {
          hs = h.row(csr.src[static_cast<std::size_t>(e)]);
          for (int d = 0; d < d_in; ++d) out[d] += inv * hs[d];
        }
      }

      // Z rows of active targets += M_r · W_r, scatter-accumulated by the
      // row-mapped kernel. Basis-combined weights land in the cache so the
      // backward pass reuses them instead of recombining.
      const Matrix& wr =
          cfg_.num_bases > 0
              ? relation_weight(lp, r, cache.relw[li][ri])
              : P(lp.wr[ri]).w;
      if (active == 0) continue;
      gemm_acc_rows(mc, wr, z, csr.active_dst);
    }
    Matrix& hn = cache.H[li + 1];
    hn.resize(n, cfg_.hidden);
    for (std::size_t k = 0; k < z.size(); ++k)
      hn.data()[k] = leaky(z.data()[k], cfg_.leaky_slope);
  }

  // Mean-pool readout over all nodes.
  const Matrix& hl = cache.H[static_cast<std::size_t>(L)];
  cache.readout.assign(static_cast<std::size_t>(cfg_.hidden), 0.0);
  for (int i = 0; i < n; ++i) {
    const double* hi = hl.row(i);
    for (int d = 0; d < cfg_.hidden; ++d)
      cache.readout[static_cast<std::size_t>(d)] += hi[d];
  }
  for (double& v : cache.readout) v /= static_cast<double>(n);
}

RgcnNet::DenseCache RgcnNet::dense_forward(std::span<const double> readout,
                                           std::span<const double> extra) const {
  DenseCache c;
  dense_forward_into(readout, extra, c);
  return c;
}

void RgcnNet::dense_forward_into(std::span<const double> readout,
                                 std::span<const double> extra,
                                 DenseCache& c) const {
  c.u0.resize(readout.size() + extra.size());
  c.z1.resize(static_cast<std::size_t>(cfg_.dense_hidden1));
  c.a1.resize(static_cast<std::size_t>(cfg_.dense_hidden1));
  c.z2.resize(static_cast<std::size_t>(cfg_.dense_hidden2));
  c.a2.resize(static_cast<std::size_t>(cfg_.dense_hidden2));
  c.logits.resize(static_cast<std::size_t>(cfg_.total_logits()));
  dense_forward_spans(readout, extra, c.u0, c.z1, c.a1, c.z2, c.a2, c.logits);
}

void RgcnNet::dense_forward_spans(std::span<const double> readout,
                                  std::span<const double> extra,
                                  std::span<double> u0, std::span<double> z1,
                                  std::span<double> a1, std::span<double> z2,
                                  std::span<double> a2,
                                  std::span<double> logits) const {
  PNP_CHECK(static_cast<int>(readout.size()) == cfg_.hidden);
  PNP_CHECK_MSG(static_cast<int>(extra.size()) == cfg_.extra_features,
                "expected " << cfg_.extra_features << " extra features, got "
                            << extra.size());
  PNP_CHECK(u0.size() == readout.size() + extra.size());
  std::copy(readout.begin(), readout.end(), u0.begin());
  std::copy(extra.begin(), extra.end(), u0.begin() + readout.size());

  auto linear = [&](std::span<const double> in, int w_idx, int b_idx,
                    std::span<double> out) {
    const Matrix& w = P(w_idx).w;
    const Matrix& b = P(b_idx).w;
    PNP_CHECK(static_cast<int>(in.size()) == w.rows());
    PNP_CHECK(static_cast<int>(out.size()) == w.cols());
    for (int j = 0; j < w.cols(); ++j) out[static_cast<std::size_t>(j)] = b(0, j);
    for (int i = 0; i < w.rows(); ++i) {
      const double vi = in[static_cast<std::size_t>(i)];
      if (vi == 0.0) continue;
      const double* wi = w.row(i);
      for (int j = 0; j < w.cols(); ++j)
        out[static_cast<std::size_t>(j)] += vi * wi[j];
    }
  };

  linear(u0, w1_, b1_, z1);
  PNP_CHECK(a1.size() == z1.size() && a2.size() == z2.size());
  for (std::size_t i = 0; i < z1.size(); ++i) a1[i] = relu(z1[i]);
  linear(a1, w2_, b2_, z2);
  for (std::size_t i = 0; i < z2.size(); ++i) a2[i] = relu(z2[i]);
  linear(a2, w3_, b3_, logits);
}

RgcnNet::DenseWeightsF32 RgcnNet::dense_weights_f32() const {
  return DenseWeightsF32{MatrixF::from(P(w1_).w), MatrixF::from(P(b1_).w),
                         MatrixF::from(P(w2_).w), MatrixF::from(P(b2_).w),
                         MatrixF::from(P(w3_).w), MatrixF::from(P(b3_).w)};
}

void RgcnNet::dense_forward_f32(const DenseWeightsF32& w,
                                std::span<const float> u0, std::span<float> h1,
                                std::span<float> h2, std::span<float> logits) {
  gemv_f32(u0, w.w1, w.b1.flat(), h1);
  for (float& v : h1) v = v > 0.0f ? v : 0.0f;
  gemv_f32(h1, w.w2, w.b2.flat(), h2);
  for (float& v : h2) v = v > 0.0f ? v : 0.0f;
  gemv_f32(h2, w.w3, w.b3.flat(), logits);
}

RgcnNet::DenseCache RgcnNet::forward(const graph::GraphTensors& g,
                                     std::span<const double> extra) const {
  const GnnCache gc = encode(g);
  return dense_forward(gc.readout, extra);
}

template <class GetGrad>
std::vector<double> RgcnNet::dense_backward_impl(
    const DenseCache& c, std::span<const double> dlogits, GetGrad&& G) const {
  PNP_CHECK(static_cast<int>(dlogits.size()) == cfg_.total_logits());

  // d(out)/d(in) of a linear layer, accumulating weight/bias grads.
  auto backward_linear = [&](const std::vector<double>& in,
                             std::span<const double> dout, int w_idx,
                             int b_idx) {
    const Matrix& w = P(w_idx).w;
    Matrix& gw_m = G(w_idx);
    Matrix& gb_m = G(b_idx);
    for (int j = 0; j < w.cols(); ++j)
      gb_m(0, j) += dout[static_cast<std::size_t>(j)];
    std::vector<double> din(in.size(), 0.0);
    for (int i = 0; i < w.rows(); ++i) {
      const double vi = in[static_cast<std::size_t>(i)];
      double* gw = gw_m.row(i);
      const double* wi = w.row(i);
      double acc = 0.0;
      for (int j = 0; j < w.cols(); ++j) {
        gw[j] += vi * dout[static_cast<std::size_t>(j)];
        acc += wi[j] * dout[static_cast<std::size_t>(j)];
      }
      din[static_cast<std::size_t>(i)] = acc;
    }
    return din;
  };

  std::vector<double> da2 = backward_linear(c.a2, dlogits, w3_, b3_);
  for (std::size_t i = 0; i < da2.size(); ++i) da2[i] *= relu_grad(c.z2[i]);
  std::vector<double> da1 = backward_linear(c.a1, da2, w2_, b2_);
  for (std::size_t i = 0; i < da1.size(); ++i) da1[i] *= relu_grad(c.z1[i]);
  std::vector<double> du0 = backward_linear(c.u0, da1, w1_, b1_);

  // First cfg_.hidden entries of u0 are the readout.
  return {du0.begin(), du0.begin() + cfg_.hidden};
}

std::vector<double> RgcnNet::dense_backward(const DenseCache& c,
                                            std::span<const double> dlogits) {
  return dense_backward_impl(
      c, dlogits, [this](int idx) -> Matrix& { return P(idx).g; });
}

std::vector<double> RgcnNet::dense_backward_into(
    const DenseCache& c, std::span<const double> dlogits,
    GradBuffer& grads) const {
  PNP_CHECK(grads.size() == params_.size());
  return dense_backward_impl(c, dlogits, [&grads](int idx) -> Matrix& {
    return grads[static_cast<std::size_t>(idx)];
  });
}

template <class GetGrad>
void RgcnNet::gnn_backward_impl(const GnnCache& cache,
                                std::span<const double> d_readout,
                                BackwardWs& ws, GetGrad&& G) const {
  if (gnn_frozen_) return;
  PNP_CHECK(cache.g != nullptr);
  PNP_CHECK(static_cast<int>(d_readout.size()) == cfg_.hidden);
  const graph::GraphTensors& g = *cache.g;
  const int n = g.num_nodes;

  // Readout backward: every node receives d_readout / n.
  Matrix* dh = &ws.dh;
  Matrix* dh_prev = &ws.dh_prev;
  dh->resize(n, cfg_.hidden);
  for (int i = 0; i < n; ++i) {
    double* di = dh->row(i);
    for (int d = 0; d < cfg_.hidden; ++d)
      di[d] = d_readout[static_cast<std::size_t>(d)] / static_cast<double>(n);
  }

  for (int l = cfg_.rgcn_layers - 1; l >= 0; --l) {
    const auto li = static_cast<std::size_t>(l);
    const LayerParams& lp = layers_[li];
    const Matrix& z = cache.Z[li];
    const Matrix& h_in = cache.H[li];
    const auto& ms = cache.M[li];
    const int d_in = h_in.cols();

    // Through the activation.
    Matrix& dz = ws.dz;
    dz.resize(n, cfg_.hidden);
    for (std::size_t k = 0; k < z.size(); ++k)
      dz.data()[k] = dh->data()[k] * leaky_grad(z.data()[k], cfg_.leaky_slope);

    // Bias and self-weight.
    colsum_acc(dz, G(lp.bias).flat());
    gemm_tn_acc(h_in, dz, G(lp.w0));

    dh_prev->resize(n, d_in);
    gemm_nt(dz, P(lp.w0).w, *dh_prev);

    for (int r = 0; r < cfg_.num_relations; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const graph::RelationCsr& csr = g.csr(r);
      const int active = csr.num_active();
      const Matrix& mc = ms[ri];
      PNP_CHECK_MSG(mc.rows() == active,
                    "stale GnnCache: graph edges changed since encode");

      // All relation kernels run on compressed rows, reading/writing dz at
      // the relation's active targets through the row maps directly — no
      // gathered copies.
      const Matrix* wr = nullptr;
      if (cfg_.num_bases == 0) {
        gemm_tn_acc_rows(mc, dz, csr.active_dst, G(lp.wr[ri]));
        wr = &P(lp.wr[ri]).w;
      } else {
        // Basis mode: G_r = M_rᵀ·dz feeds both coef and basis grads; the
        // combined W_r was computed at encode time and shared here.
        Matrix& gr = ws.gr;
        gr.resize(d_in, cfg_.hidden);
        gr.zero();
        gemm_tn_acc_rows(mc, dz, csr.active_dst, gr);
        Matrix& coef_g = G(lp.coef);
        for (int b = 0; b < cfg_.num_bases; ++b) {
          const auto bi = static_cast<std::size_t>(b);
          coef_g(r, b) += frob_inner(gr, P(lp.basis[bi]).w);
          G(lp.basis[bi]).add_scaled(gr, P(lp.coef).w(r, b));
        }
        wr = &cache.relw[li][ri];
      }
      if (active == 0) continue;

      // dM_r = dz·W_rᵀ on compressed rows, then scatter back through the
      // normalized aggregation: dH[s] += (1/c_{t,r})·dM_r[t].
      Matrix& dmc = ws.dmc;
      dmc.resize(active, d_in);
      gemm_nt_rows(dz, csr.active_dst, *wr, dmc);
      for (int idx = 0; idx < active; ++idx) {
        const auto dst = static_cast<std::size_t>(
            csr.active_dst[static_cast<std::size_t>(idx)]);
        const double inv = csr.inv_deg[dst];
        double* dmt = dmc.row(idx);
        for (int d = 0; d < d_in; ++d) dmt[d] *= inv;
        const int b0 = csr.row_offset[dst];
        const int b1 = csr.row_offset[dst + 1];
        for (int e = b0; e < b1; ++e) {
          double* dhs = dh_prev->row(csr.src[static_cast<std::size_t>(e)]);
          for (int d = 0; d < d_in; ++d) dhs[d] += dmt[d];
        }
      }
    }
    std::swap(dh, dh_prev);
  }

  // Embedding backward: scatter rows into the two tables.
  Matrix& gt_m = G(emb_token_);
  Matrix& gk_m = G(emb_kind_);
  for (int i = 0; i < n; ++i) {
    const int tok = g.token[static_cast<std::size_t>(i)];
    const int kind = g.kind[static_cast<std::size_t>(i)];
    const double* di = dh->row(i);
    double* gt = gt_m.row(tok);
    double* gk = gk_m.row(kind);
    for (int d = 0; d < cfg_.emb_dim; ++d) {
      gt[d] += di[d];
      gk[d] += di[d];
    }
  }
}

void RgcnNet::gnn_backward(const GnnCache& cache,
                           std::span<const double> d_readout) {
  gnn_backward_impl(cache, d_readout, bws_,
                    [this](int idx) -> Matrix& { return P(idx).g; });
}

void RgcnNet::gnn_backward_into(const GnnCache& cache,
                                std::span<const double> d_readout,
                                GradBuffer& grads, BackwardWs& ws) const {
  PNP_CHECK(grads.size() == params_.size());
  gnn_backward_impl(cache, d_readout, ws, [&grads](int idx) -> Matrix& {
    return grads[static_cast<std::size_t>(idx)];
  });
}

RgcnNet::GradBuffer RgcnNet::make_grad_buffer() const {
  GradBuffer gb;
  gb.reserve(params_.size());
  for (const auto& p : params_)
    gb.push_back(Matrix::zeros(p->w.rows(), p->w.cols()));
  return gb;
}

void RgcnNet::add_grad_buffer(const GradBuffer& gb) {
  PNP_CHECK(gb.size() == params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    params_[i]->g.add_scaled(gb[i], 1.0);
}

std::span<const double> RgcnNet::head_logits(const DenseCache& cache,
                                             int head) const {
  PNP_CHECK(head >= 0 && head < static_cast<int>(cfg_.head_sizes.size()));
  const int off = head_offset_[static_cast<std::size_t>(head)];
  const int len = cfg_.head_sizes[static_cast<std::size_t>(head)];
  return std::span<const double>(cache.logits)
      .subspan(static_cast<std::size_t>(off), static_cast<std::size_t>(len));
}

int RgcnNet::head_offset(int head) const {
  PNP_CHECK(head >= 0 && head < static_cast<int>(head_offset_.size()));
  return head_offset_[static_cast<std::size_t>(head)];
}

std::vector<Param*> RgcnNet::params() {
  std::vector<Param*> out;
  out.reserve(params_.size());
  for (auto& p : params_) out.push_back(p.get());
  return out;
}

std::size_t RgcnNet::num_weights(bool trainable_only) const {
  std::size_t n = 0;
  for (const auto& p : params_)
    if (!trainable_only || p->trainable) n += p->w.size();
  return n;
}

void RgcnNet::zero_grad() {
  for (auto& p : params_) p->g.zero();
}

void RgcnNet::set_gnn_frozen(bool frozen) {
  gnn_frozen_ = frozen;
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (is_gnn_param_[i]) params_[i]->trainable = !frozen;
}

StateDict RgcnNet::state_dict() const {
  StateDict sd;
  for (const auto& p : params_) {
    std::vector<double> v(p->w.flat().begin(), p->w.flat().end());
    sd.put(p->name, std::move(v));
  }
  return sd;
}

void RgcnNet::load_state_dict(const StateDict& sd, bool load_gnn_only) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (load_gnn_only && !is_gnn_param_[i]) continue;
    const auto& v = sd.get(p.name);
    PNP_CHECK_MSG(v.size() == p.w.size(),
                  "state entry '" << p.name << "' has " << v.size()
                                  << " values, expected " << p.w.size());
    std::copy(v.begin(), v.end(), p.w.data());
  }
}

}  // namespace pnp::nn
