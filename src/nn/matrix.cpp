#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pnp::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0) {
  PNP_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::xavier(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  const double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng.uniform(-a, a);
  return m;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::add_scaled(const Matrix& other, double a) {
  PNP_CHECK(same_shape(other));
  const double* o = other.data_.data();
  double* d = data_.data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += a * o[i];
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm shapes: (" << a.rows() << "x" << a.cols() << ")·("
                                 << b.rows() << "x" << b.cols() << ") -> ("
                                 << c.rows() << "x" << c.cols() << ")");
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (int p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.row(p);
      for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.rows() == b.rows() && a.cols() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm_tn shapes mismatch");
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const double* ap = a.row(p);
    const double* bp = b.row(p);
    for (int i = 0; i < m; ++i) {
      const double api = ap[i];
      if (api == 0.0) continue;
      double* ci = c.row(i);
      for (int j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

void gemm_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.cols() && a.rows() == c.rows() &&
                    b.rows() == c.cols(),
                "gemm_nt shapes mismatch");
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (int j = 0; j < n; ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] += s;
    }
  }
}

void add_bias_rows(Matrix& m, std::span<const double> bias) {
  PNP_CHECK(static_cast<int>(bias.size()) == m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    double* mi = m.row(i);
    for (int j = 0; j < m.cols(); ++j) mi[j] += bias[static_cast<std::size_t>(j)];
  }
}

void colsum_acc(const Matrix& m, std::span<double> out) {
  PNP_CHECK(static_cast<int>(out.size()) == m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    const double* mi = m.row(i);
    for (int j = 0; j < m.cols(); ++j) out[static_cast<std::size_t>(j)] += mi[j];
  }
}

double frob_inner(const Matrix& a, const Matrix& b) {
  PNP_CHECK(a.same_shape(b));
  const double* pa = a.data();
  const double* pb = b.data();
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

}  // namespace pnp::nn
