#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

#include "common/error.hpp"

namespace pnp::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0) {
  PNP_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::xavier(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  const double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng.uniform(-a, a);
  return m;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(int rows, int cols) {
  PNP_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

void Matrix::add_scaled(const Matrix& other, double a) {
  PNP_CHECK(same_shape(other));
  const double* o = other.data_.data();
  double* d = data_.data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += a * o[i];
}

namespace {

// ---------------------------------------------------------------------------
// GEMM engine. One driver serves all public entry points:
//  - A can be read normally (av = A[i][p]) or transposed (av = A[p][i]);
//  - C tiles either accumulate (loaded first) or are freshly initialized
//    (from a broadcast bias row, or zero) — fusing away the separate
//    zero-fill/bias passes;
//  - A·Bᵀ products transpose B once into a per-thread scratch and reuse
//    the same driver, so the hot reduction always streams B rows.
// Each micro-tile holds an MI-row × (≤kColTile)-column patch of C in
// registers across the whole k reduction; B row loads amortize over MI
// rows. Three ISA levels: AVX-512, AVX2+FMA, and a blocked scalar
// fallback with identical structure.
// ---------------------------------------------------------------------------

enum class AMode { Normal, Transposed };
enum class CInit { Acc, Fresh };  // Fresh: init from bias row (null → 0)

struct GemmArgs {
  const double* a;
  std::size_t lda;
  const double* b;
  std::size_t ldb;
  double* c;
  std::size_t ldc;
  const double* bias;  // only read in CInit::Fresh mode; may be null
  int m, n, k;
  // Optional row maps (CSR gather/scatter without materialized copies):
  // row i of A reads a[amap[i]], row p of B reads b[bmap[p]], row i of C
  // writes c[cmap[i]]. cmap rows must be distinct (they are CSR targets).
  const int* amap = nullptr;
  const int* bmap = nullptr;
  const int* cmap = nullptr;
};

inline const double* b_row(const GemmArgs& g, int p) {
  const int idx = g.bmap ? g.bmap[p] : p;
  return g.b + static_cast<std::size_t>(idx) * g.ldb;
}

inline double* c_row(const GemmArgs& g, int i) {
  const int idx = g.cmap ? g.cmap[i] : i;
  return g.c + static_cast<std::size_t>(idx) * g.ldc;
}

#ifdef PNP_PARALLEL
// Row-parallel threshold: below ~this many MACs a parallel region costs
// more than it saves. Row blocks are disjoint and per-element summation
// order never depends on the thread count, so the parallel path is
// bit-identical to the sequential one.
constexpr double kParallelGrainMacs = 2.5e5;
#endif

template <AMode AM>
inline double a_elem(const GemmArgs& g, int i, int p) {
  if constexpr (AM == AMode::Normal) {
    const int row = g.amap ? g.amap[i] : i;
    return g.a[static_cast<std::size_t>(row) * g.lda +
               static_cast<std::size_t>(p)];
  } else {
    return g.a[static_cast<std::size_t>(p) * g.lda +
               static_cast<std::size_t>(i)];
  }
}

#if defined(__AVX512F__)

constexpr int kRowTile = 8;   // C rows per micro-tile
constexpr int kColTile = 24;  // 3 × 8 lanes (8×3 zmm accs + 3 B + av fit in 32 regs)

template <AMode AM, CInit CI, int MI, int NV>
void micro(const GemmArgs& g, int i0, int j0, __mmask8 tail) {
  __m512d acc[MI][NV];
  for (int r = 0; r < MI; ++r) {
    const double* cr = c_row(g, i0 + r) + j0;
    for (int v = 0; v < NV; ++v) {
      if constexpr (CI == CInit::Acc) {
        acc[r][v] = (v == NV - 1) ? _mm512_maskz_loadu_pd(tail, cr + 8 * v)
                                  : _mm512_loadu_pd(cr + 8 * v);
      } else {
        acc[r][v] =
            g.bias == nullptr
                ? _mm512_setzero_pd()
                : ((v == NV - 1)
                       ? _mm512_maskz_loadu_pd(tail, g.bias + j0 + 8 * v)
                       : _mm512_loadu_pd(g.bias + j0 + 8 * v));
      }
    }
  }
  for (int p = 0; p < g.k; ++p) {
    const double* bp = b_row(g, p) + j0;
    __m512d bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] = (v == NV - 1) ? _mm512_maskz_loadu_pd(tail, bp + 8 * v)
                            : _mm512_loadu_pd(bp + 8 * v);
    for (int r = 0; r < MI; ++r) {
      const __m512d av = _mm512_set1_pd(a_elem<AM>(g, i0 + r, p));
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm512_fmadd_pd(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MI; ++r) {
    double* cr = c_row(g, i0 + r) + j0;
    for (int v = 0; v < NV; ++v) {
      if (v == NV - 1)
        _mm512_mask_storeu_pd(cr + 8 * v, tail, acc[r][v]);
      else
        _mm512_storeu_pd(cr + 8 * v, acc[r][v]);
    }
  }
}

template <AMode AM, CInit CI, int MI>
void micro_cols(const GemmArgs& g, int i0, int j0, int nv, __mmask8 tail) {
  switch (nv) {
    case 1: micro<AM, CI, MI, 1>(g, i0, j0, tail); break;
    case 2: micro<AM, CI, MI, 2>(g, i0, j0, tail); break;
    case 3: micro<AM, CI, MI, 3>(g, i0, j0, tail); break;
    default: break;
  }
}

template <AMode AM, CInit CI>
void row_block(const GemmArgs& g, int i0, int mi) {
  auto cols = [&](auto mi_tag) {
    constexpr int MI = decltype(mi_tag)::value;
    int j0 = 0;
    for (; j0 + kColTile <= g.n; j0 += kColTile)
      micro<AM, CI, MI, 3>(g, i0, j0, 0xff);
    const int rem = g.n - j0;
    if (rem == 0) return;
    const int nv = (rem + 7) / 8;
    const auto tail = static_cast<__mmask8>(
        (rem % 8) ? ((1u << (rem % 8)) - 1u) : 0xffu);
    micro_cols<AM, CI, MI>(g, i0, j0, nv, tail);
  };
  switch (mi) {
    case 8: cols(std::integral_constant<int, 8>{}); break;
    case 7: cols(std::integral_constant<int, 7>{}); break;
    case 6: cols(std::integral_constant<int, 6>{}); break;
    case 5: cols(std::integral_constant<int, 5>{}); break;
    case 4: cols(std::integral_constant<int, 4>{}); break;
    case 3: cols(std::integral_constant<int, 3>{}); break;
    case 2: cols(std::integral_constant<int, 2>{}); break;
    case 1: cols(std::integral_constant<int, 1>{}); break;
    default: break;
  }
}

#elif defined(__AVX2__) && defined(__FMA__)

constexpr int kRowTile = 4;  // C rows per micro-tile
constexpr int kColTile = 8;  // 2 × 4 lanes

inline __m256i avx2_tail_mask(int lanes) {
  // lanes in 1..4: all-ones in the first `lanes` 64-bit slots.
  alignas(32) static constexpr std::int64_t kBits[8] = {-1, -1, -1, -1,
                                                       0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kBits + (4 - lanes)));
}

template <AMode AM, CInit CI, int MI, int NV>
void micro(const GemmArgs& g, int i0, int j0, __m256i tail) {
  __m256d acc[MI][NV];
  for (int r = 0; r < MI; ++r) {
    const double* cr = c_row(g, i0 + r) + j0;
    for (int v = 0; v < NV; ++v) {
      if constexpr (CI == CInit::Acc) {
        acc[r][v] = (v == NV - 1) ? _mm256_maskload_pd(cr + 4 * v, tail)
                                  : _mm256_loadu_pd(cr + 4 * v);
      } else {
        acc[r][v] =
            g.bias == nullptr
                ? _mm256_setzero_pd()
                : ((v == NV - 1)
                       ? _mm256_maskload_pd(g.bias + j0 + 4 * v, tail)
                       : _mm256_loadu_pd(g.bias + j0 + 4 * v));
      }
    }
  }
  for (int p = 0; p < g.k; ++p) {
    const double* bp = b_row(g, p) + j0;
    __m256d bv[NV];
    for (int v = 0; v < NV; ++v)
      bv[v] = (v == NV - 1) ? _mm256_maskload_pd(bp + 4 * v, tail)
                            : _mm256_loadu_pd(bp + 4 * v);
    for (int r = 0; r < MI; ++r) {
      const __m256d av = _mm256_set1_pd(a_elem<AM>(g, i0 + r, p));
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_pd(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MI; ++r) {
    double* cr = c_row(g, i0 + r) + j0;
    for (int v = 0; v < NV; ++v) {
      if (v == NV - 1)
        _mm256_maskstore_pd(cr + 4 * v, tail, acc[r][v]);
      else
        _mm256_storeu_pd(cr + 4 * v, acc[r][v]);
    }
  }
}

template <AMode AM, CInit CI>
void row_block(const GemmArgs& g, int i0, int mi) {
  auto cols = [&](auto mi_tag) {
    constexpr int MI = decltype(mi_tag)::value;
    const __m256i full = avx2_tail_mask(4);
    int j0 = 0;
    for (; j0 + kColTile <= g.n; j0 += kColTile)
      micro<AM, CI, MI, 2>(g, i0, j0, full);
    const int rem = g.n - j0;
    if (rem == 0) return;
    const __m256i tail = avx2_tail_mask((rem % 4) ? rem % 4 : 4);
    if (rem > 4)
      micro<AM, CI, MI, 2>(g, i0, j0, tail);
    else
      micro<AM, CI, MI, 1>(g, i0, j0, tail);
  };
  switch (mi) {
    case 4: cols(std::integral_constant<int, 4>{}); break;
    case 3: cols(std::integral_constant<int, 3>{}); break;
    case 2: cols(std::integral_constant<int, 2>{}); break;
    case 1: cols(std::integral_constant<int, 1>{}); break;
    default: break;
  }
}

#else  // scalar fallback

constexpr int kRowTile = 4;
constexpr int kColTile = 32;

template <AMode AM, CInit CI, int MI>
void micro(const GemmArgs& g, int i0, int j0, int nj) {
  double acc[MI][kColTile];
  for (int r = 0; r < MI; ++r) {
    if constexpr (CI == CInit::Acc) {
      const double* cr = c_row(g, i0 + r) + j0;
      for (int j = 0; j < nj; ++j) acc[r][j] = cr[j];
    } else if (g.bias != nullptr) {
      for (int j = 0; j < nj; ++j) acc[r][j] = g.bias[j0 + j];
    } else {
      for (int j = 0; j < nj; ++j) acc[r][j] = 0.0;
    }
  }
  for (int p = 0; p < g.k; ++p) {
    const double* bp = b_row(g, p) + j0;
    double av[MI];
    for (int r = 0; r < MI; ++r) av[r] = a_elem<AM>(g, i0 + r, p);
    for (int r = 0; r < MI; ++r)
      for (int j = 0; j < nj; ++j) acc[r][j] += av[r] * bp[j];
  }
  for (int r = 0; r < MI; ++r) {
    double* cr = c_row(g, i0 + r) + j0;
    for (int j = 0; j < nj; ++j) cr[j] = acc[r][j];
  }
}

template <AMode AM, CInit CI>
void row_block(const GemmArgs& g, int i0, int mi) {
  for (int j0 = 0; j0 < g.n; j0 += kColTile) {
    const int nj = std::min(kColTile, g.n - j0);
    switch (mi) {
      case 4: micro<AM, CI, 4>(g, i0, j0, nj); break;
      case 3: micro<AM, CI, 3>(g, i0, j0, nj); break;
      case 2: micro<AM, CI, 2>(g, i0, j0, nj); break;
      case 1: micro<AM, CI, 1>(g, i0, j0, nj); break;
      default: break;
    }
  }
}

#endif  // ISA selection

template <AMode AM, CInit CI>
void gemm_drive(const GemmArgs& g) {
#ifdef PNP_PARALLEL
  if (static_cast<double>(g.m) * static_cast<double>(g.k) *
          static_cast<double>(g.n) >=
      kParallelGrainMacs) {
#pragma omp parallel for schedule(static)
    for (int i0 = 0; i0 < g.m; i0 += kRowTile)
      row_block<AM, CI>(g, i0, std::min(kRowTile, g.m - i0));
    return;
  }
#endif
  for (int i0 = 0; i0 < g.m; i0 += kRowTile)
    row_block<AM, CI>(g, i0, std::min(kRowTile, g.m - i0));
}

/// B (n×k) transposed into a per-thread scratch (k×n) so A·Bᵀ runs through
/// the row-streaming driver. The scratch grows once per thread and is
/// reused, so steady-state training does not allocate here.
const double* transpose_to_scratch(const Matrix& b) {
  thread_local std::vector<double> scratch;
  const int n = b.rows(), k = b.cols();
  scratch.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  double* bt = scratch.data();
  for (int j = 0; j < n; ++j) {
    const double* bj = b.row(j);
    for (int p = 0; p < k; ++p)
      bt[static_cast<std::size_t>(p) * n + j] = bj[p];
  }
  return bt;
}

}  // namespace

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm shapes: (" << a.rows() << "x" << a.cols() << ")·("
                                 << b.rows() << "x" << b.cols() << ") -> ("
                                 << c.rows() << "x" << c.cols() << ")");
  const GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
                   b.data(),  static_cast<std::size_t>(b.cols()),
                   c.data(),  static_cast<std::size_t>(c.cols()),
                   nullptr,   c.rows(), c.cols(), a.cols()};
  gemm_drive<AMode::Normal, CInit::Acc>(g);
}

void gemm_bias(const Matrix& a, const Matrix& b, std::span<const double> bias,
               Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm_bias shapes mismatch");
  PNP_CHECK(bias.empty() || static_cast<int>(bias.size()) == c.cols());
  const GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
                   b.data(),  static_cast<std::size_t>(b.cols()),
                   c.data(),  static_cast<std::size_t>(c.cols()),
                   bias.empty() ? nullptr : bias.data(),
                   c.rows(),  c.cols(),  a.cols()};
  gemm_drive<AMode::Normal, CInit::Fresh>(g);
}

void gemm_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.rows() == b.rows() && a.cols() == c.rows() &&
                    b.cols() == c.cols(),
                "gemm_tn shapes mismatch");
  const GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
                   b.data(),  static_cast<std::size_t>(b.cols()),
                   c.data(),  static_cast<std::size_t>(c.cols()),
                   nullptr,   c.rows(), c.cols(), a.rows()};
  gemm_drive<AMode::Transposed, CInit::Acc>(g);
}

void gemm_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.cols() && a.rows() == c.rows() &&
                    b.rows() == c.cols(),
                "gemm_nt shapes mismatch");
  const GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
                   transpose_to_scratch(b),
                   static_cast<std::size_t>(b.rows()),
                   c.data(),  static_cast<std::size_t>(c.cols()),
                   nullptr,   c.rows(), c.cols(), a.cols()};
  gemm_drive<AMode::Normal, CInit::Acc>(g);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.cols() && a.rows() == c.rows() &&
                    b.rows() == c.cols(),
                "gemm_nt shapes mismatch");
  const GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
                   transpose_to_scratch(b),
                   static_cast<std::size_t>(b.rows()),
                   c.data(),  static_cast<std::size_t>(c.cols()),
                   nullptr,   c.rows(), c.cols(), a.cols()};
  gemm_drive<AMode::Normal, CInit::Fresh>(g);
}

void gemm_acc_rows(const Matrix& a, const Matrix& b, Matrix& c,
                   std::span<const int> rows) {
  PNP_CHECK_MSG(a.cols() == b.rows() && b.cols() == c.cols() &&
                    static_cast<int>(rows.size()) == a.rows(),
                "gemm_acc_rows shapes mismatch");
  GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
             b.data(),  static_cast<std::size_t>(b.cols()),
             c.data(),  static_cast<std::size_t>(c.cols()),
             nullptr,   a.rows(), c.cols(), a.cols()};
  g.cmap = rows.data();
  gemm_drive<AMode::Normal, CInit::Acc>(g);
}

void gemm_tn_acc_rows(const Matrix& a, const Matrix& b,
                      std::span<const int> rows, Matrix& c) {
  PNP_CHECK_MSG(static_cast<int>(rows.size()) == a.rows() &&
                    a.cols() == c.rows() && b.cols() == c.cols(),
                "gemm_tn_acc_rows shapes mismatch");
  GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
             b.data(),  static_cast<std::size_t>(b.cols()),
             c.data(),  static_cast<std::size_t>(c.cols()),
             nullptr,   c.rows(), c.cols(), a.rows()};
  g.bmap = rows.data();
  gemm_drive<AMode::Transposed, CInit::Acc>(g);
}

void gemm_nt_rows(const Matrix& a, std::span<const int> rows, const Matrix& b,
                  Matrix& c) {
  PNP_CHECK_MSG(a.cols() == b.cols() && b.rows() == c.cols() &&
                    static_cast<int>(rows.size()) == c.rows(),
                "gemm_nt_rows shapes mismatch");
  GemmArgs g{a.data(),  static_cast<std::size_t>(a.cols()),
             transpose_to_scratch(b),
             static_cast<std::size_t>(b.rows()),
             c.data(),  static_cast<std::size_t>(c.cols()),
             nullptr,   c.rows(), c.cols(), a.cols()};
  g.amap = rows.data();
  gemm_drive<AMode::Normal, CInit::Fresh>(g);
}

namespace detail {

void gemm_acc_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK(a.cols() == b.rows() && a.rows() == c.rows() &&
            b.cols() == c.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (int p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.row(p);
      for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_tn_acc_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK(a.rows() == b.rows() && a.cols() == c.rows() &&
            b.cols() == c.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const double* ap = a.row(p);
    const double* bp = b.row(p);
    for (int i = 0; i < m; ++i) {
      const double api = ap[i];
      if (api == 0.0) continue;
      double* ci = c.row(i);
      for (int j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

void gemm_nt_acc_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  PNP_CHECK(a.cols() == b.cols() && a.rows() == c.rows() &&
            b.rows() == c.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (int j = 0; j < n; ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] += s;
    }
  }
}

}  // namespace detail

MatrixF::MatrixF(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0f) {
  PNP_CHECK(rows >= 0 && cols >= 0);
}

MatrixF MatrixF::from(const Matrix& m) {
  MatrixF f(m.rows(), m.cols());
  const double* src = m.data();
  float* dst = f.data();
  for (std::size_t i = 0; i < f.size(); ++i)
    dst[i] = static_cast<float>(src[i]);
  return f;
}

void gemv_f32(std::span<const float> x, const MatrixF& w,
              std::span<const float> bias, std::span<float> out) {
  const int k = w.rows(), n = w.cols();
  PNP_CHECK_MSG(static_cast<int>(x.size()) == k &&
                    static_cast<int>(out.size()) == n &&
                    (bias.empty() || static_cast<int>(bias.size()) == n),
                "gemv_f32 shapes: x(" << x.size() << ")·W(" << k << "x" << n
                                      << ") -> out(" << out.size() << ")");
#if defined(__AVX512F__)
  for (int j0 = 0; j0 < n; j0 += 16) {
    const int rem = std::min(16, n - j0);
    const auto m = static_cast<__mmask16>(
        rem == 16 ? 0xffffu : ((1u << rem) - 1u));
    __m512 acc = bias.empty()
                     ? _mm512_setzero_ps()
                     : _mm512_maskz_loadu_ps(m, bias.data() + j0);
    for (int i = 0; i < k; ++i)
      acc = _mm512_fmadd_ps(_mm512_set1_ps(x[static_cast<std::size_t>(i)]),
                            _mm512_maskz_loadu_ps(m, w.row(i) + j0), acc);
    _mm512_mask_storeu_ps(out.data() + j0, m, acc);
  }
#elif defined(__AVX2__) && defined(__FMA__)
  alignas(32) static constexpr std::int32_t kBits[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  for (int j0 = 0; j0 < n; j0 += 8) {
    const int rem = std::min(8, n - j0);
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kBits + (8 - rem)));
    __m256 acc = bias.empty()
                     ? _mm256_setzero_ps()
                     : _mm256_maskload_ps(bias.data() + j0, m);
    for (int i = 0; i < k; ++i)
      acc = _mm256_fmadd_ps(_mm256_set1_ps(x[static_cast<std::size_t>(i)]),
                            _mm256_maskload_ps(w.row(i) + j0, m), acc);
    _mm256_maskstore_ps(out.data() + j0, m, acc);
  }
#else
  detail::gemv_f32_naive(x, w, bias, out);
#endif
}

namespace detail {

void gemv_f32_naive(std::span<const float> x, const MatrixF& w,
                    std::span<const float> bias, std::span<float> out) {
  const int k = w.rows(), n = w.cols();
  PNP_CHECK(static_cast<int>(x.size()) == k &&
            static_cast<int>(out.size()) == n &&
            (bias.empty() || static_cast<int>(bias.size()) == n));
  for (int j = 0; j < n; ++j)
    out[static_cast<std::size_t>(j)] =
        bias.empty() ? 0.0f : bias[static_cast<std::size_t>(j)];
  for (int i = 0; i < k; ++i) {
    const float xi = x[static_cast<std::size_t>(i)];
    const float* wi = w.row(i);
    for (int j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] += xi * wi[j];
  }
}

}  // namespace detail

void add_bias_rows(Matrix& m, std::span<const double> bias) {
  PNP_CHECK(static_cast<int>(bias.size()) == m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    double* mi = m.row(i);
    for (int j = 0; j < m.cols(); ++j) mi[j] += bias[static_cast<std::size_t>(j)];
  }
}

void colsum_acc(const Matrix& m, std::span<double> out) {
  PNP_CHECK(static_cast<int>(out.size()) == m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    const double* mi = m.row(i);
    for (int j = 0; j < m.cols(); ++j) out[static_cast<std::size_t>(j)] += mi[j];
  }
}

double frob_inner(const Matrix& a, const Matrix& b) {
  PNP_CHECK(a.same_shape(b));
  const double* pa = a.data();
  const double* pb = b.data();
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

}  // namespace pnp::nn
