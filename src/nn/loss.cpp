#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pnp::nn {

double softmax_cross_entropy(std::span<const double> logits, int label,
                             std::span<double> grad) {
  PNP_CHECK(logits.size() == grad.size() && !logits.empty());
  PNP_CHECK(label >= 0 && label < static_cast<int>(logits.size()));
  const double mx = *std::max_element(logits.begin(), logits.end());
  double z = 0.0;
  for (double v : logits) z += std::exp(v - mx);
  const double logz = std::log(z) + mx;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double p = std::exp(logits[i] - logz);
    grad[i] = p;
  }
  grad[static_cast<std::size_t>(label)] -= 1.0;
  return logz - logits[static_cast<std::size_t>(label)];
}

std::vector<double> softmax(std::span<const double> logits) {
  PNP_CHECK(!logits.empty());
  const double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    z += p[i];
  }
  for (double& v : p) v /= z;
  return p;
}

int argmax_index(std::span<const double> xs) {
  PNP_CHECK(!xs.empty());
  return static_cast<int>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

int argmax_index(std::span<const float> xs) {
  PNP_CHECK(!xs.empty());
  return static_cast<int>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace pnp::nn
