#pragma once

/// \file simulator.hpp
/// The OpenMP execution simulator: a mechanistic (roofline + scheduling)
/// cost model that maps (kernel, OpenMP config, power cap) to execution
/// time, energy, and PAPI-like counters on a modeled machine.
///
/// Model summary (see DESIGN.md §4.5):
///  - power cap → sustainable core frequency via hw::PowerCapController;
///  - compute time from FLOP throughput (cores × SMT yield × f);
///  - memory time from DRAM traffic surviving the cache hierarchy, against
///    saturating per-socket bandwidth with a NUMA factor;
///  - schedule-dependent load imbalance and dequeue overheads
///    (static/dynamic/guided × chunk size);
///  - fork/join barrier, Amdahl serial fraction, critical-section
///    serialization, reduction combine;
///  - energy = package power (activity-scaled, cap-clamped) × time;
///  - `measure()` adds deterministic log-normal run-to-run jitter so
///    sampling-based tuners (BLISS/OpenTuner) face realistic variance,
///    while `expected()` is the noiseless ground truth used for oracle
///    labels.

#include <cstdint>

#include "hw/machine.hpp"
#include "hw/power.hpp"
#include "sim/kernel.hpp"
#include "sim/omp_config.hpp"

namespace pnp::sim {

struct ExecutionResult {
  double seconds = 0.0;
  double joules = 0.0;
  double avg_power_w = 0.0;
  double frequency_ghz = 0.0;
  hw::Counters counters;

  double edp() const { return joules * seconds; }
};

class Simulator {
 public:
  struct Options {
    /// Log-normal σ of measure() jitter. Real µs–ms-scale OpenMP region
    /// timings show 5–15% run-to-run variation; this is what separates
    /// sampling-based tuners (which see noisy observations) from the
    /// static PnP tuner and the noiseless oracle.
    double noise_sigma = 0.12;
    double cache_leak = 0.02;     ///< DRAM traffic floor past a fitting cache
    double overlap_fraction = 0.2;///< compute/memory overlap imperfection
  };

  explicit Simulator(const hw::MachineModel& machine)
      : Simulator(machine, Options{}) {}
  Simulator(const hw::MachineModel& machine, Options options);

  /// Noiseless expected execution at a package power cap (watts).
  ExecutionResult expected(const KernelDescriptor& k, const OmpConfig& cfg,
                           double cap_w) const;

  /// One "measured" execution: expected() with deterministic jitter.
  /// Distinct `draw` values give independent samples; the stream is a pure
  /// function of (machine, kernel, config, cap, draw).
  ExecutionResult measure(const KernelDescriptor& k, const OmpConfig& cfg,
                          double cap_w, std::uint64_t draw) const;

  /// The five counters the dynamic variant profiles, collected at the
  /// default configuration (paper: "execute applications twice" — the
  /// counters do not depend on the candidate configuration).
  hw::Counters profile_counters(const KernelDescriptor& k) const;

  /// The default OpenMP configuration on this machine: all hardware
  /// threads, static schedule, compiler-default chunk.
  OmpConfig default_config() const;

  const hw::MachineModel& machine() const { return machine_; }
  const Options& options() const { return options_; }

 private:
  hw::MachineModel machine_;
  Options options_;
};

}  // namespace pnp::sim
