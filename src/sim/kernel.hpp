#pragma once

/// \file kernel.hpp
/// The runtime-relevant characterization of one OpenMP parallel region.
///
/// Each of the workload suite's 68 regions carries one KernelDescriptor;
/// the same descriptor drives both the synthetic IR generation (so the
/// GNN's input graph reflects the code's nature) and the execution
/// simulator's cost model (so the best configuration follows from that
/// nature) — preserving the structure→behaviour coupling the paper's
/// static approach learns.

#include <string>

namespace pnp::sim {

struct KernelDescriptor {
  std::string app;     ///< application name, e.g. "lulesh"
  std::string region;  ///< region name, e.g. "r3_apply_accel_bc"

  /// Iterations of the parallelized (outer) loop.
  double trip_count = 1024;
  /// Floating-point work per outer iteration.
  double flops_per_iter = 1000;
  /// Memory traffic per outer iteration (bytes touched, pre-cache).
  double bytes_per_iter = 512;
  /// Total resident data (drives the cache-miss model).
  double working_set_bytes = 8.0 * 1024 * 1024;

  /// Load imbalance across iterations: 0 = uniform, 1 = strong ramp
  /// (max iteration cost ≈ 2× the mean).
  double imbalance = 0.0;
  /// Branch divergence inside the body (0..1) — feeds the misprediction
  /// counter and a small pipeline penalty.
  double branch_div = 0.0;
  /// Amdahl serial fraction inside the region.
  double serial_frac = 0.0;
  /// Fraction of work serialized by critical sections / atomics.
  double critical_frac = 0.0;
  /// Relative cost of a dynamic-schedule dequeue for this kernel (1 = nominal).
  double chunk_overhead_scale = 1.0;

  int loop_nest_depth = 1;   ///< loop nesting inside the region body
  bool reduction = false;    ///< OpenMP reduction / atomic combine present
  bool has_calls = false;    ///< calls math intrinsics (sqrt/exp/...)

  /// Fraction of machine peak FLOPs this body can reach (ILP/vectorizability).
  double flop_efficiency = 0.25;

  std::string qualified_name() const { return app + "." + region; }
};

}  // namespace pnp::sim
