#pragma once

/// \file omp_config.hpp
/// OpenMP runtime configurations — the tuning knobs of Table I: thread
/// count, scheduling policy, chunk size.

#include <string>

namespace pnp::sim {

enum class Schedule { Static = 0, Dynamic = 1, Guided = 2 };
inline constexpr int kNumSchedules = 3;

const char* schedule_name(Schedule s);

/// One OpenMP runtime configuration. `chunk == 0` means the compiler /
/// runtime default: block partition for static, 1 for dynamic, trip/(2n)
/// decaying for guided.
struct OmpConfig {
  int threads = 1;
  Schedule schedule = Schedule::Static;
  int chunk = 0;

  std::string to_string() const;

  bool operator==(const OmpConfig& o) const {
    return threads == o.threads && schedule == o.schedule && chunk == o.chunk;
  }
};

}  // namespace pnp::sim
