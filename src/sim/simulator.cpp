#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace pnp::sim {

namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Fraction of traffic that survives (misses) a cache of `cache_bytes`
/// given a working set of `ws` bytes.
double residual(double cache_bytes, double ws) {
  if (ws <= 0.0) return 0.0;
  return clamp01(1.0 - cache_bytes / ws);
}

/// Memory bandwidth utilization as a function of threads per socket:
/// one thread cannot saturate a socket; ~4 threads can.
double bw_utilization(double threads_per_socket) {
  return std::min(1.0, 1.3 * threads_per_socket / (threads_per_socket + 1.2));
}

}  // namespace

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
  }
  return "?";
}

std::string OmpConfig::to_string() const {
  std::string s = std::to_string(threads);
  s += "t/";
  s += schedule_name(schedule);
  s += "/";
  s += (chunk == 0) ? "def" : std::to_string(chunk);
  return s;
}

Simulator::Simulator(const hw::MachineModel& machine, Options options)
    : machine_(machine), options_(options) {}

OmpConfig Simulator::default_config() const {
  return OmpConfig{machine_.max_threads(), Schedule::Static, 0};
}

ExecutionResult Simulator::expected(const KernelDescriptor& k,
                                    const OmpConfig& cfg, double cap_w) const {
  PNP_CHECK_MSG(cfg.threads >= 1, "need at least one thread");
  PNP_CHECK_MSG(cap_w > 0.0, "power cap must be positive");
  const hw::MachineModel& m = machine_;

  const int n = std::min(cfg.threads, m.max_threads());
  const int cores = std::min(n, m.total_cores());
  const int sockets_used =
      (cores + m.cores_per_socket - 1) / m.cores_per_socket;
  // SMT: threads beyond physical cores add partial throughput.
  const double smt_mult =
      1.0 + (m.smt_throughput_gain - 1.0) *
                std::max(0, n - cores) / static_cast<double>(cores);

  const double cap = std::clamp(cap_w, m.min_cap_w, m.tdp_w);
  const double f =
      hw::PowerCapController::max_frequency_ghz(m, cap, cores, sockets_used);

  // ---- Work volumes -----------------------------------------------------
  const double trip = std::max(1.0, k.trip_count);
  const double total_flops = trip * k.flops_per_iter;
  const double total_bytes = trip * k.bytes_per_iter;
  const double ws = std::max(1.0, k.working_set_bytes);

  // Cache filtering (aggregate caches of the cores in use).
  const double resid3 = residual(m.l3_total_bytes(sockets_used), ws);
  const double dram_bytes =
      total_bytes * (options_.cache_leak + (1.0 - options_.cache_leak) * resid3);

  // ---- Raw phase times ---------------------------------------------------
  const double branch_penalty = 1.0 + 0.25 * k.branch_div;
  const double comp_rate =
      cores * smt_mult * m.flops_per_cycle_per_core * k.flop_efficiency * f *
      1e9 / branch_penalty;
  const double serial_comp_rate =
      m.flops_per_cycle_per_core * k.flop_efficiency * f * 1e9 /
      branch_penalty;

  const double threads_per_socket =
      static_cast<double>(cores) / static_cast<double>(sockets_used);
  double bw = m.mem_bw_gbs_per_socket * 1e9 * sockets_used *
              bw_utilization(threads_per_socket);
  if (sockets_used > 1) bw *= m.numa_remote_factor;
  const double bw_single =
      m.mem_bw_gbs_per_socket * 1e9 * bw_utilization(1.0);

  const double par_frac = 1.0 - k.serial_frac;
  const double t_comp = par_frac * total_flops / comp_rate;
  const double t_mem = par_frac * dram_bytes / bw;
  double t_work = std::max(t_comp, t_mem) +
                  options_.overlap_fraction * std::min(t_comp, t_mem);

  // ---- Scheduling: imbalance and overhead ---------------------------------
  // Default chunk sizes per the OpenMP spec / libgomp behaviour.
  double chunk = static_cast<double>(cfg.chunk);
  if (chunk <= 0.0) {
    switch (cfg.schedule) {
      case Schedule::Static: chunk = std::ceil(trip / n); break;
      case Schedule::Dynamic: chunk = 1.0; break;
      case Schedule::Guided: chunk = std::max(1.0, trip / (2.0 * n)); break;
    }
  }
  chunk = std::min(chunk, trip);

  // Residual imbalance factor λ ≥ 1 (ramp-profile model; see DESIGN.md).
  const double n_frac = 1.0 - 1.0 / n;
  const double rho = std::min(1.0, chunk * n / trip);
  double lambda = 1.0;
  double n_chunks = std::max(1.0, trip / chunk);
  switch (cfg.schedule) {
    case Schedule::Static:
      lambda = 1.0 + k.imbalance * n_frac * rho;
      break;
    case Schedule::Dynamic:
      lambda = 1.0 + k.imbalance * n_frac * std::min(1.0, rho / 4.0);
      break;
    case Schedule::Guided: {
      lambda = 1.0 + k.imbalance * n_frac * std::min(1.0, rho / 2.0);
      // Guided generates ~n·log(trip/(chunk·n)) chunks.
      n_chunks = n * std::max(1.0, std::log2(1.0 + trip / (chunk * n))) + n;
      break;
    }
  }

  // Starvation when there are fewer chunks than threads.
  const double par_eff = std::min(static_cast<double>(n), n_chunks);
  const double starvation = static_cast<double>(n) / par_eff;

  // Dequeue overhead (dynamic and guided pay per chunk; static is free).
  const double f_scale = 2.5 / f;  // overheads are core-clocked
  double t_sched = 0.0;
  if (cfg.schedule != Schedule::Static) {
    const double t_dequeue = 60e-9 * k.chunk_overhead_scale * f_scale;
    const double contention = 1.0 + 0.015 * n;
    t_sched = (n_chunks / n) * t_dequeue * contention;
  }

  t_work *= lambda * starvation;

  // ---- Fixed overheads -----------------------------------------------------
  // Fork + join barrier: a per-thread wake/arrive cost at core clock
  // (libgomp-like: ~1 µs base, tens of µs at high thread counts under
  // lowered clocks). The super-linear frequency sensitivity models the
  // compounding of spin-wait latencies once RAPL throttles the clock —
  // this is what makes tiny regions prefer few threads and is the engine
  // of the paper's §I motivating example (7.54× at 40 W vs 1.67× at TDP).
  const double t_fork =
      (0.8e-6 + 0.12e-6 * n) * std::pow(f_scale, 1.6);
  const double t_serial =
      k.serial_frac * (total_flops / serial_comp_rate + dram_bytes / bw_single);
  const double t_single_comp = total_flops / serial_comp_rate;
  const double t_crit =
      k.critical_frac * t_single_comp * (1.0 + 0.03 * (n - 1));
  const double t_reduce =
      k.reduction ? n * 100e-9 * f_scale : 0.0;

  const double seconds = t_fork + t_serial + t_work + t_sched + t_crit + t_reduce;

  // ---- Power & energy -------------------------------------------------------
  const double activity =
      (t_comp + t_mem) > 0.0 ? t_comp / std::max(t_comp, t_mem) : 1.0;
  const double demand =
      m.power_demand_w(cores, sockets_used, f, clamp01(activity));
  const double power = std::min(demand, cap);

  ExecutionResult r;
  r.seconds = seconds;
  r.joules = power * seconds;
  r.avg_power_w = power;
  r.frequency_ghz = f;
  r.counters = profile_counters(k);
  return r;
}

ExecutionResult Simulator::measure(const KernelDescriptor& k,
                                   const OmpConfig& cfg, double cap_w,
                                   std::uint64_t draw) const {
  ExecutionResult r = expected(k, cfg, cap_w);
  // Deterministic per-(machine, kernel, config, cap, draw) jitter stream.
  std::uint64_t seed = fnv1a(machine_.name);
  seed = hash_combine(seed, fnv1a(k.qualified_name()));
  seed = hash_combine(seed, static_cast<std::uint64_t>(cfg.threads));
  seed = hash_combine(seed, static_cast<std::uint64_t>(cfg.schedule));
  seed = hash_combine(seed, static_cast<std::uint64_t>(cfg.chunk));
  seed = hash_combine(seed, static_cast<std::uint64_t>(cap_w * 16.0));
  seed = hash_combine(seed, draw);
  Rng rng(seed);
  const double jt = rng.lognormal_jitter(options_.noise_sigma);
  const double jp = rng.lognormal_jitter(options_.noise_sigma * 0.5);
  r.seconds *= jt;
  r.avg_power_w *= jp;
  r.joules = r.avg_power_w * r.seconds;
  return r;
}

hw::Counters Simulator::profile_counters(const KernelDescriptor& k) const {
  const hw::MachineModel& m = machine_;
  const double trip = std::max(1.0, k.trip_count);
  const double ws = std::max(1.0, k.working_set_bytes);
  const double lines = trip * k.bytes_per_iter / 64.0;

  const int cores = m.total_cores();
  const double r1 = std::max(0.30, residual(m.l1_total_bytes(cores), ws));
  const double r2 = residual(m.l2_total_bytes(cores), ws);
  const double r3 = 0.02 + 0.98 * residual(m.l3_total_bytes(m.sockets), ws);

  hw::Counters c;
  c.instructions = trip * (2.2 * k.flops_per_iter +
                           0.6 * k.bytes_per_iter / 8.0 + 4.0 +
                           2.0 * k.loop_nest_depth);
  c.l1_misses = lines * r1;
  c.l2_misses = lines * std::min(r1, r2);
  c.l3_misses = lines * std::min({r1, r2, r3});
  c.branch_mispredictions =
      trip * (1.0 + k.loop_nest_depth) * k.branch_div * 0.3;
  return c;
}

}  // namespace pnp::sim
