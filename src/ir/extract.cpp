#include "ir/extract.hpp"

#include <map>
#include <set>

#include "common/error.hpp"

namespace pnp::ir {

Module extract_function(const Module& m, const std::string& function_name) {
  const Function* fn = m.find_function(function_name);
  PNP_CHECK_MSG(fn != nullptr,
                "extract: no function '@" << function_name << "' in module '"
                                          << m.name << "'");

  // Collect referenced globals and callees.
  std::set<int> used_globals;
  std::set<std::string> used_callees;
  for (const auto& b : fn->blocks) {
    for (const auto& in : b.instrs) {
      if (in.op == Opcode::Call) used_callees.insert(in.aux);
      for (const auto& v : in.operands)
        if (v.kind == Value::Kind::Global) used_globals.insert(v.index);
    }
  }

  Module out;
  out.name = m.name + ":" + function_name;

  // Re-index globals.
  std::map<int, int> global_remap;
  for (int gi : used_globals) {
    global_remap[gi] = static_cast<int>(out.globals.size());
    out.globals.push_back(m.globals[static_cast<std::size_t>(gi)]);
  }

  // Referenced callees become declarations (whether they were module
  // functions or already external) — exactly llvm-extract's behaviour.
  for (const auto& callee : used_callees) {
    if (const Function* cf = m.find_function(callee)) {
      Declaration d;
      d.name = cf->name;
      d.ret = cf->ret;
      for (const auto& a : cf->args) d.params.push_back(a.type);
      out.declarations.push_back(std::move(d));
    } else {
      for (const auto& d : m.declarations)
        if (d.name == callee) out.declarations.push_back(d);
    }
  }

  Function copy = *fn;
  for (auto& b : copy.blocks)
    for (auto& in : b.instrs)
      for (auto& v : in.operands)
        if (v.kind == Value::Kind::Global)
          v.index = global_remap.at(v.index);
  out.functions.push_back(std::move(copy));
  return out;
}

}  // namespace pnp::ir
