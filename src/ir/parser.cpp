#include "ir/parser.hpp"

#include <charconv>
#include <map>
#include <optional>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace pnp::ir {

namespace {

/// Cursor over one instruction line.
class LineLexer {
 public:
  LineLexer(std::string_view s, int line_no) : s_(s), line_(line_no) {}

  bool eof() {
    skip_ws();
    return pos_ >= s_.size();
  }

  /// Next token: identifier, %name, @name, number, or single punctuation.
  std::string next() {
    skip_ws();
    PNP_CHECK_MSG(pos_ < s_.size(), "line " << line_ << ": unexpected end");
    const char c = s_[pos_];
    if (c == '%' || c == '@') {
      std::size_t j = pos_ + 1;
      while (j < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[j])) ||
                               s_[j] == '_' || s_[j] == '.' || s_[j] == '-'))
        ++j;
      auto tok = std::string(s_.substr(pos_, j - pos_));
      pos_ = j;
      return tok;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.' || c == '_') {
      std::size_t j = pos_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) || s_[j] == '_' ||
              s_[j] == '.' || s_[j] == '-' || s_[j] == '+'))
        ++j;
      auto tok = std::string(s_.substr(pos_, j - pos_));
      pos_ = j;
      return tok;
    }
    ++pos_;
    return std::string(1, c);
  }

  /// Peek without consuming.
  std::string peek() {
    const std::size_t save = pos_;
    if (eof()) return {};
    auto t = next();
    pos_ = save;
    return t;
  }

  void expect(std::string_view tok) {
    auto t = next();
    PNP_CHECK_MSG(t == tok,
                  "line " << line_ << ": expected '" << tok << "', got '" << t
                          << "'");
  }

  /// Consume `tok` if it is next; returns whether it was consumed.
  bool accept(std::string_view tok) {
    const std::size_t save = pos_;
    if (eof()) return false;
    if (next() == tok) return true;
    pos_ = save;
    return false;
  }

  int line() const { return line_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int line_;
};

Type parse_type_tok(const std::string& tok, int line) {
  Type t;
  PNP_CHECK_MSG(parse_type(tok, t), "line " << line << ": bad type '" << tok
                                            << "'");
  return t;
}

bool is_number_token(const std::string& tok) {
  if (tok.empty()) return false;
  const char c = tok[0];
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
         c == '.';
}

bool looks_float(const std::string& tok) {
  return tok.find('.') != std::string::npos ||
         tok.find('e') != std::string::npos ||
         tok.find("inf") != std::string::npos ||
         tok.find("nan") != std::string::npos;
}

/// Parses one function body; holds name→index maps.
class FunctionParser {
 public:
  FunctionParser(Module& m, Function& fn) : m_(m), fn_(fn) {
    for (std::size_t i = 0; i < fn_.args.size(); ++i)
      arg_index_[fn_.args[i].name] = static_cast<int>(i);
  }

  /// Pre-pass: register block labels so forward branches resolve.
  void register_block(const std::string& name) {
    block_index_["%" + name] = static_cast<int>(fn_.blocks.size());
    fn_.blocks.push_back(BasicBlock{name, {}});
  }

  void parse_instruction(const std::string& line, int line_no, int block_idx) {
    LineLexer lex(line, line_no);
    Instruction in;

    std::string tok = lex.next();
    if (tok[0] == '%') {
      // "%tN = ..."
      PNP_CHECK_MSG(tok.size() > 1 && tok[1] == 't',
                    "line " << line_no << ": results must be temps, got '"
                            << tok << "'");
      in.result = std::stoi(tok.substr(2));
      lex.expect("=");
      tok = lex.next();
    }

    Opcode op;
    PNP_CHECK_MSG(parse_opcode(tok, op),
                  "line " << line_no << ": unknown opcode '" << tok << "'");
    in.op = op;

    switch (op) {
      case Opcode::Alloca: {
        in.type = parse_type_tok(lex.next(), line_no);
        break;
      }
      case Opcode::Load: {
        in.type = parse_type_tok(lex.next(), line_no);
        in.operands.push_back(value(lex, Type::Ptr));
        break;
      }
      case Opcode::Store: {
        const Type t = parse_type_tok(lex.next(), line_no);
        in.operands.push_back(value(lex, t));
        lex.expect(",");
        in.operands.push_back(value(lex, Type::Ptr));
        break;
      }
      case Opcode::Gep: {
        in.type = Type::Ptr;
        in.operands.push_back(value(lex, Type::Ptr));
        while (lex.accept(","))
          in.operands.push_back(value(lex, Type::I64));
        break;
      }
      case Opcode::ICmp:
      case Opcode::FCmp: {
        in.aux = lex.next();
        const Type t = parse_type_tok(lex.next(), line_no);
        in.type = Type::I1;
        in.operands.push_back(value(lex, t));
        lex.expect(",");
        in.operands.push_back(value(lex, t));
        break;
      }
      case Opcode::Select: {
        in.type = parse_type_tok(lex.next(), line_no);
        in.operands.push_back(value(lex, Type::I1));
        lex.expect(",");
        in.operands.push_back(value(lex, in.type));
        lex.expect(",");
        in.operands.push_back(value(lex, in.type));
        break;
      }
      case Opcode::Phi: {
        in.type = parse_type_tok(lex.next(), line_no);
        do {
          lex.expect("[");
          in.operands.push_back(value(lex, in.type));
          lex.expect(",");
          in.operands.push_back(block_ref(lex));
          lex.expect("]");
        } while (lex.accept(","));
        break;
      }
      case Opcode::Br: {
        in.operands.push_back(block_ref(lex));
        break;
      }
      case Opcode::CondBr: {
        in.operands.push_back(value(lex, Type::I1));
        lex.expect(",");
        in.operands.push_back(block_ref(lex));
        lex.expect(",");
        in.operands.push_back(block_ref(lex));
        break;
      }
      case Opcode::Ret: {
        if (!lex.eof()) {
          const Type t = parse_type_tok(lex.next(), line_no);
          in.operands.push_back(value(lex, t));
        }
        break;
      }
      case Opcode::Call: {
        in.type = parse_type_tok(lex.next(), line_no);
        std::string callee = lex.next();
        PNP_CHECK_MSG(callee[0] == '@',
                      "line " << line_no << ": call expects @callee");
        in.aux = callee.substr(1);
        lex.expect("(");
        // Parameter types come from the callee's declaration or from an
        // already-parsed module function (the printer emits callees before
        // callers, so intra-module signatures are available here).
        std::vector<Type> params;
        for (const auto& d : m_.declarations)
          if (d.name == in.aux) params = d.params;
        if (params.empty()) {
          if (const Function* target = m_.find_function(in.aux))
            for (const auto& a : target->args) params.push_back(a.type);
        }
        std::size_t argi = 0;
        if (!lex.accept(")")) {
          do {
            const Type hint =
                argi < params.size() ? params[argi] : Type::F64;
            in.operands.push_back(value(lex, hint));
            ++argi;
          } while (lex.accept(","));
          lex.expect(")");
        }
        break;
      }
      case Opcode::AtomicRMW: {
        in.aux = lex.next();
        const Type t = parse_type_tok(lex.next(), line_no);
        in.operands.push_back(value(lex, Type::Ptr));
        lex.expect(",");
        in.operands.push_back(value(lex, t));
        break;
      }
      case Opcode::Barrier:
        break;
      default: {
        // Binary arithmetic / casts: "<op> <type> operand(, operand)".
        in.type = parse_type_tok(lex.next(), line_no);
        // Cast source operands keep their own type; constants take the
        // result type as a best-effort hint.
        in.operands.push_back(value(lex, in.type));
        while (lex.accept(","))
          in.operands.push_back(value(lex, in.type));
        break;
      }
    }

    PNP_CHECK_MSG(lex.eof(), "line " << line_no << ": trailing tokens");
    if (in.has_result())
      temp_type_[in.result] =
          (in.op == Opcode::Alloca) ? Type::Ptr : in.type;
    fn_.blocks[static_cast<std::size_t>(block_idx)].instrs.push_back(
        std::move(in));
  }

  void finalize() {
    int max_temp = -1;
    for (const auto& [id, t] : temp_type_) max_temp = std::max(max_temp, id);
    fn_.next_temp = max_temp + 1;
  }

 private:
  Value block_ref(LineLexer& lex) {
    const std::string tok = lex.next();
    auto it = block_index_.find(tok);
    PNP_CHECK_MSG(it != block_index_.end(),
                  "line " << lex.line() << ": unknown block '" << tok << "'");
    return Value::block(it->second);
  }

  Value value(LineLexer& lex, Type hint) {
    const std::string tok = lex.next();
    PNP_CHECK_MSG(!tok.empty(), "line " << lex.line() << ": missing operand");
    if (tok[0] == '@') {
      const int gi = m_.global_index(tok.substr(1));
      PNP_CHECK_MSG(gi >= 0, "line " << lex.line() << ": unknown global '"
                                     << tok << "'");
      return Value::global(gi);
    }
    if (tok[0] == '%') {
      const std::string name = tok.substr(1);
      if (auto it = arg_index_.find(name); it != arg_index_.end())
        return Value::arg(it->second,
                          fn_.args[static_cast<std::size_t>(it->second)].type);
      PNP_CHECK_MSG(name.size() > 1 && name[0] == 't',
                    "line " << lex.line() << ": unknown value '" << tok << "'");
      const int id = std::stoi(name.substr(1));
      auto it = temp_type_.find(id);
      // Forward references only occur through phi back-edges; trust the
      // phi's declared type (hint) there and fix nothing else.
      const Type t = (it != temp_type_.end()) ? it->second : hint;
      return Value::temp(id, t);
    }
    PNP_CHECK_MSG(is_number_token(tok),
                  "line " << lex.line() << ": bad operand '" << tok << "'");
    if (is_float(hint) || looks_float(tok)) {
      return Value::const_float(std::stod(tok),
                                is_float(hint) ? hint : Type::F64);
    }
    return Value::const_int(std::stoll(tok),
                            is_integer(hint) ? hint : Type::I64);
  }

  Module& m_;
  Function& fn_;
  std::map<std::string, int> arg_index_;
  std::map<std::string, int> block_index_;
  std::map<int, Type> temp_type_;
};

}  // namespace

Module parse_module(std::string_view text) {
  Module m;
  const auto lines = split(text, '\n');
  std::size_t i = 0;
  int line_no = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    while (i < lines.size()) {
      auto t = std::string(trim(lines[i]));
      ++i;
      ++line_no;
      if (t.empty() || starts_with(t, ";")) continue;
      return t;
    }
    return std::nullopt;
  };

  bool saw_module_header = false;
  while (auto line_opt = next_line()) {
    const std::string& line = *line_opt;
    if (starts_with(line, "module ")) {
      PNP_CHECK_MSG(!saw_module_header, "line " << line_no
                                                << ": duplicate module header");
      saw_module_header = true;
      const auto q0 = line.find('"');
      const auto q1 = line.rfind('"');
      PNP_CHECK_MSG(q0 != std::string::npos && q1 > q0,
                    "line " << line_no << ": bad module header");
      m.name = line.substr(q0 + 1, q1 - q0 - 1);
    } else if (starts_with(line, "global ")) {
      LineLexer lex(line, line_no);
      lex.expect("global");
      std::string name = lex.next();
      PNP_CHECK_MSG(name[0] == '@', "line " << line_no << ": bad global name");
      const Type t = parse_type_tok(lex.next(), line_no);
      m.globals.push_back(Global{name.substr(1), t});
    } else if (starts_with(line, "declare ")) {
      LineLexer lex(line, line_no);
      lex.expect("declare");
      Declaration d;
      d.ret = parse_type_tok(lex.next(), line_no);
      std::string name = lex.next();
      PNP_CHECK_MSG(name[0] == '@', "line " << line_no << ": bad declare name");
      d.name = name.substr(1);
      lex.expect("(");
      if (!lex.accept(")")) {
        do {
          d.params.push_back(parse_type_tok(lex.next(), line_no));
        } while (lex.accept(","));
        lex.expect(")");
      }
      m.declarations.push_back(std::move(d));
    } else if (starts_with(line, "define ")) {
      LineLexer lex(line, line_no);
      lex.expect("define");
      Function fn;
      fn.ret = parse_type_tok(lex.next(), line_no);
      std::string name = lex.next();
      PNP_CHECK_MSG(name[0] == '@', "line " << line_no << ": bad function name");
      fn.name = name.substr(1);
      lex.expect("(");
      if (!lex.accept(")")) {
        do {
          Argument a;
          a.type = parse_type_tok(lex.next(), line_no);
          std::string an = lex.next();
          PNP_CHECK_MSG(an[0] == '%', "line " << line_no << ": bad arg name");
          a.name = an.substr(1);
          fn.args.push_back(std::move(a));
        } while (lex.accept(","));
        lex.expect(")");
      }
      lex.expect("{");

      // Collect the body lines, then two-pass parse (labels first).
      std::vector<std::pair<std::string, int>> body;
      while (true) {
        auto body_line = next_line();
        PNP_CHECK_MSG(body_line.has_value(),
                      "line " << line_no << ": unterminated function body");
        if (*body_line == "}") break;
        body.emplace_back(*body_line, line_no);
      }

      FunctionParser fp(m, fn);
      for (const auto& [bl, ln] : body)
        if (ends_with(bl, ":"))
          fp.register_block(bl.substr(0, bl.size() - 1));
      int cur_block = -1;
      for (const auto& [bl, ln] : body) {
        if (ends_with(bl, ":")) {
          cur_block = fn.block_index(bl.substr(0, bl.size() - 1));
          continue;
        }
        PNP_CHECK_MSG(cur_block >= 0,
                      "line " << ln << ": instruction before first label");
        fp.parse_instruction(bl, ln, cur_block);
      }
      fp.finalize();
      m.functions.push_back(std::move(fn));
    } else {
      PNP_CHECK_MSG(false, "line " << line_no << ": unrecognized line '"
                                   << line << "'");
    }
  }
  return m;
}

}  // namespace pnp::ir
