#include "ir/module.hpp"

#include <algorithm>

namespace pnp::ir {

namespace {

constexpr struct {
  Opcode op;
  std::string_view name;
} kOpcodeNames[] = {
    {Opcode::Alloca, "alloca"},   {Opcode::Load, "load"},
    {Opcode::Store, "store"},     {Opcode::Gep, "gep"},
    {Opcode::Add, "add"},         {Opcode::Sub, "sub"},
    {Opcode::Mul, "mul"},         {Opcode::SDiv, "sdiv"},
    {Opcode::SRem, "srem"},       {Opcode::And, "and"},
    {Opcode::Or, "or"},           {Opcode::Xor, "xor"},
    {Opcode::Shl, "shl"},         {Opcode::LShr, "lshr"},
    {Opcode::FAdd, "fadd"},       {Opcode::FSub, "fsub"},
    {Opcode::FMul, "fmul"},       {Opcode::FDiv, "fdiv"},
    {Opcode::ICmp, "icmp"},       {Opcode::FCmp, "fcmp"},
    {Opcode::Trunc, "trunc"},     {Opcode::SExt, "sext"},
    {Opcode::ZExt, "zext"},       {Opcode::SIToFP, "sitofp"},
    {Opcode::FPToSI, "fptosi"},   {Opcode::FPExt, "fpext"},
    {Opcode::FPTrunc, "fptrunc"}, {Opcode::Select, "select"},
    {Opcode::Phi, "phi"},         {Opcode::Br, "br"},
    {Opcode::CondBr, "condbr"},   {Opcode::Ret, "ret"},
    {Opcode::Call, "call"},       {Opcode::AtomicRMW, "atomicrmw"},
    {Opcode::Barrier, "barrier"},
};

}  // namespace

std::string_view opcode_name(Opcode op) {
  for (const auto& e : kOpcodeNames)
    if (e.op == op) return e.name;
  return "?";
}

bool parse_opcode(std::string_view name, Opcode& out) {
  for (const auto& e : kOpcodeNames) {
    if (e.name == name) {
      out = e.op;
      return true;
    }
  }
  return false;
}

bool parse_type(std::string_view name, Type& out) {
  for (Type t : {Type::Void, Type::I1, Type::I32, Type::I64, Type::F32,
                 Type::F64, Type::Ptr}) {
    if (type_name(t) == name) {
      out = t;
      return true;
    }
  }
  return false;
}

int Function::block_index(std::string_view block_name) const {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].name == block_name) return static_cast<int>(i);
  return -1;
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.instrs.size();
  return n;
}

int Module::global_index(std::string_view global_name) const {
  for (std::size_t i = 0; i < globals.size(); ++i)
    if (globals[i].name == global_name) return static_cast<int>(i);
  return -1;
}

const Function* Module::find_function(std::string_view fn_name) const {
  for (const auto& f : functions)
    if (f.name == fn_name) return &f;
  return nullptr;
}

Function* Module::find_function(std::string_view fn_name) {
  for (auto& f : functions)
    if (f.name == fn_name) return &f;
  return nullptr;
}

bool Module::is_declared(std::string_view fn_name) const {
  return std::any_of(declarations.begin(), declarations.end(),
                     [&](const Declaration& d) { return d.name == fn_name; });
}

std::size_t Module::instruction_count() const {
  std::size_t n = 0;
  for (const auto& f : functions) n += f.instruction_count();
  return n;
}

}  // namespace pnp::ir
