#pragma once

/// \file instruction.hpp
/// Instructions and operand references of the mini-IR.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/type.hpp"

namespace pnp::ir {

enum class Opcode : std::uint8_t {
  // Memory
  Alloca, Load, Store, Gep,
  // Integer arithmetic
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, LShr,
  // Floating-point arithmetic
  FAdd, FSub, FMul, FDiv,
  // Comparisons
  ICmp, FCmp,
  // Conversions
  Trunc, SExt, ZExt, SIToFP, FPToSI, FPExt, FPTrunc,
  // Control and data flow
  Select, Phi, Br, CondBr, Ret, Call,
  // Parallel-runtime constructs (what an OpenMP lowering leaves behind)
  AtomicRMW, Barrier,
};

/// Mnemonic text of an opcode (also the node token used by pnp::graph).
std::string_view opcode_name(Opcode op);

/// Parse a mnemonic; returns true on success.
bool parse_opcode(std::string_view name, Opcode& out);

/// True for instructions that end a basic block.
constexpr bool is_terminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

/// A reference to an SSA value, function argument, global, constant, or
/// basic block (blocks appear as operands of branches and phis).
struct Value {
  enum class Kind : std::uint8_t {
    None, Temp, Arg, Global, ConstInt, ConstFloat, Block,
  };

  Kind kind = Kind::None;
  Type type = Type::Void;
  int index = -1;            ///< temp id / arg index / global index / block index
  std::int64_t ival = 0;     ///< ConstInt payload
  double fval = 0.0;         ///< ConstFloat payload

  static Value temp(int id, Type t) { return {Kind::Temp, t, id, 0, 0.0}; }
  static Value arg(int idx, Type t) { return {Kind::Arg, t, idx, 0, 0.0}; }
  static Value global(int idx) { return {Kind::Global, Type::Ptr, idx, 0, 0.0}; }
  static Value const_int(std::int64_t v, Type t = Type::I64) {
    return {Kind::ConstInt, t, -1, v, 0.0};
  }
  static Value const_float(double v, Type t = Type::F64) {
    return {Kind::ConstFloat, t, -1, 0, v};
  }
  static Value block(int idx) { return {Kind::Block, Type::Void, idx, 0, 0.0}; }

  bool is_constant() const {
    return kind == Kind::ConstInt || kind == Kind::ConstFloat;
  }

  bool operator==(const Value& o) const {
    return kind == o.kind && type == o.type && index == o.index &&
           ival == o.ival && fval == o.fval;
  }
};

/// One mini-IR instruction.
///
/// Operand conventions by opcode:
///  - binary ops:   {lhs, rhs}
///  - Load:         {ptr}
///  - Store:        {value, ptr}
///  - Gep:          {ptr, idx...}
///  - ICmp/FCmp:    {lhs, rhs}, predicate in `aux`
///  - Select:       {cond, a, b}
///  - Phi:          {v0, block0, v1, block1, ...}
///  - Br:           {block}
///  - CondBr:       {cond, then_block, else_block}
///  - Ret:          {} or {value}
///  - Call:         {args...}, callee name in `aux`
///  - AtomicRMW:    {ptr, value}, operation ("add"/"fadd"/...) in `aux`
///  - Alloca:       {}, `type` = element type, result is a ptr
///  - Barrier:      {}
struct Instruction {
  Opcode op = Opcode::Barrier;
  Type type = Type::Void;  ///< result type (element type for Alloca)
  int result = -1;         ///< defining temp id; -1 when no result
  std::vector<Value> operands;
  std::string aux;         ///< predicate / callee / atomic operation

  bool has_result() const { return result >= 0; }
};

}  // namespace pnp::ir
