#pragma once

/// \file builder.hpp
/// Convenience API for constructing mini-IR functions, in the spirit of
/// llvm::IRBuilder. The workload suite's IR synthesizer is built on top of
/// this.

#include <string>

#include "ir/module.hpp"

namespace pnp::ir {

/// Builds instructions into a current insertion block of one function.
/// The builder owns temp-id allocation for the function it targets.
class Builder {
 public:
  /// Target an existing function inside `module`. The function must outlive
  /// the builder.
  Builder(Module& module, Function& function);

  /// Create a new basic block; does not change the insertion point.
  /// Returns the block index.
  int add_block(const std::string& name);

  /// Set the insertion point to the given block index.
  void set_block(int block_index);

  /// Current insertion block index.
  int current_block() const { return cur_block_; }

  // --- Value factories -----------------------------------------------
  Value arg(int index) const;
  Value global(const std::string& name) const;
  Value ci64(std::int64_t v) const { return Value::const_int(v, Type::I64); }
  Value ci32(std::int64_t v) const { return Value::const_int(v, Type::I32); }
  Value cf64(double v) const { return Value::const_float(v, Type::F64); }

  // --- Memory ---------------------------------------------------------
  Value alloca_(Type elem);
  Value load(Type t, Value ptr);
  void store(Value value, Value ptr);
  Value gep(Value ptr, Value index);
  Value gep2(Value ptr, Value i0, Value i1);

  // --- Arithmetic -----------------------------------------------------
  Value binop(Opcode op, Value lhs, Value rhs);
  Value add(Value a, Value b) { return binop(Opcode::Add, a, b); }
  Value sub(Value a, Value b) { return binop(Opcode::Sub, a, b); }
  Value mul(Value a, Value b) { return binop(Opcode::Mul, a, b); }
  Value sdiv(Value a, Value b) { return binop(Opcode::SDiv, a, b); }
  Value srem(Value a, Value b) { return binop(Opcode::SRem, a, b); }
  Value fadd(Value a, Value b) { return binop(Opcode::FAdd, a, b); }
  Value fsub(Value a, Value b) { return binop(Opcode::FSub, a, b); }
  Value fmul(Value a, Value b) { return binop(Opcode::FMul, a, b); }
  Value fdiv(Value a, Value b) { return binop(Opcode::FDiv, a, b); }

  /// Integer comparison; predicate ∈ {eq,ne,slt,sle,sgt,sge}.
  Value icmp(const std::string& predicate, Value lhs, Value rhs);
  /// Float comparison; predicate ∈ {oeq,one,olt,ole,ogt,oge}.
  Value fcmp(const std::string& predicate, Value lhs, Value rhs);

  Value select(Value cond, Value a, Value b);
  Value cast(Opcode op, Type to, Value v);
  Value sitofp(Value v, Type to = Type::F64) { return cast(Opcode::SIToFP, to, v); }
  Value sext(Value v, Type to = Type::I64) { return cast(Opcode::SExt, to, v); }

  // --- Control flow ----------------------------------------------------
  /// Phi node; pairs of (incoming value, block index).
  Value phi(Type t, const std::vector<std::pair<Value, int>>& incoming);
  /// Add an incoming edge to an existing phi (needed for loop back-edges).
  void phi_add_incoming(Value phi_result, Value incoming, int block_index);
  void br(int block_index);
  void condbr(Value cond, int then_block, int else_block);
  void ret();
  void ret(Value v);

  // --- Calls & parallel-runtime ----------------------------------------
  Value call(Type ret_type, const std::string& callee,
             const std::vector<Value>& args);
  void atomicrmw(const std::string& operation, Value ptr, Value value);
  void barrier();

 private:
  Value append(Instruction instr);
  BasicBlock& block();

  Module& module_;
  Function& fn_;
  int cur_block_ = -1;
};

}  // namespace pnp::ir
