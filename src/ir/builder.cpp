#include "ir/builder.hpp"

#include "common/error.hpp"

namespace pnp::ir {

Builder::Builder(Module& module, Function& function)
    : module_(module), fn_(function) {
  if (!fn_.blocks.empty()) cur_block_ = 0;
}

int Builder::add_block(const std::string& name) {
  PNP_CHECK_MSG(fn_.block_index(name) < 0,
                "duplicate block name '" << name << "'");
  fn_.blocks.push_back(BasicBlock{name, {}});
  return static_cast<int>(fn_.blocks.size()) - 1;
}

void Builder::set_block(int block_index) {
  PNP_CHECK(block_index >= 0 &&
            block_index < static_cast<int>(fn_.blocks.size()));
  cur_block_ = block_index;
}

BasicBlock& Builder::block() {
  PNP_CHECK_MSG(cur_block_ >= 0, "no insertion block set");
  return fn_.blocks[static_cast<std::size_t>(cur_block_)];
}

Value Builder::arg(int index) const {
  PNP_CHECK(index >= 0 && index < static_cast<int>(fn_.args.size()));
  return Value::arg(index, fn_.args[static_cast<std::size_t>(index)].type);
}

Value Builder::global(const std::string& name) const {
  const int idx = module_.global_index(name);
  PNP_CHECK_MSG(idx >= 0, "unknown global '@" << name << "'");
  return Value::global(idx);
}

Value Builder::append(Instruction instr) {
  const bool produces =
      instr.type != Type::Void || instr.op == Opcode::Alloca;
  Value result;
  if (produces) {
    instr.result = fn_.next_temp++;
    const Type result_type =
        (instr.op == Opcode::Alloca) ? Type::Ptr : instr.type;
    result = Value::temp(instr.result, result_type);
  }
  block().instrs.push_back(std::move(instr));
  return result;
}

Value Builder::alloca_(Type elem) {
  Instruction in;
  in.op = Opcode::Alloca;
  in.type = elem;
  return append(std::move(in));
}

Value Builder::load(Type t, Value ptr) {
  PNP_CHECK_MSG(ptr.type == Type::Ptr, "load pointer operand must be ptr");
  Instruction in;
  in.op = Opcode::Load;
  in.type = t;
  in.operands = {ptr};
  return append(std::move(in));
}

void Builder::store(Value value, Value ptr) {
  PNP_CHECK_MSG(ptr.type == Type::Ptr, "store pointer operand must be ptr");
  Instruction in;
  in.op = Opcode::Store;
  in.type = Type::Void;
  in.operands = {value, ptr};
  append(std::move(in));
}

Value Builder::gep(Value ptr, Value index) {
  PNP_CHECK_MSG(ptr.type == Type::Ptr, "gep base must be ptr");
  Instruction in;
  in.op = Opcode::Gep;
  in.type = Type::Ptr;
  in.operands = {ptr, index};
  // Gep's `type` is the result type (ptr); append() keys result creation on
  // non-void type.
  in.type = Type::Ptr;
  return append(std::move(in));
}

Value Builder::gep2(Value ptr, Value i0, Value i1) {
  PNP_CHECK_MSG(ptr.type == Type::Ptr, "gep base must be ptr");
  Instruction in;
  in.op = Opcode::Gep;
  in.type = Type::Ptr;
  in.operands = {ptr, i0, i1};
  return append(std::move(in));
}

Value Builder::binop(Opcode op, Value lhs, Value rhs) {
  PNP_CHECK_MSG(lhs.type == rhs.type,
                "binop operand types differ: " << type_name(lhs.type) << " vs "
                                               << type_name(rhs.type));
  Instruction in;
  in.op = op;
  in.type = lhs.type;
  in.operands = {lhs, rhs};
  return append(std::move(in));
}

Value Builder::icmp(const std::string& predicate, Value lhs, Value rhs) {
  PNP_CHECK(lhs.type == rhs.type && is_integer(lhs.type));
  Instruction in;
  in.op = Opcode::ICmp;
  in.type = Type::I1;
  in.aux = predicate;
  in.operands = {lhs, rhs};
  return append(std::move(in));
}

Value Builder::fcmp(const std::string& predicate, Value lhs, Value rhs) {
  PNP_CHECK(lhs.type == rhs.type && is_float(lhs.type));
  Instruction in;
  in.op = Opcode::FCmp;
  in.type = Type::I1;
  in.aux = predicate;
  in.operands = {lhs, rhs};
  return append(std::move(in));
}

Value Builder::select(Value cond, Value a, Value b) {
  PNP_CHECK(cond.type == Type::I1 && a.type == b.type);
  Instruction in;
  in.op = Opcode::Select;
  in.type = a.type;
  in.operands = {cond, a, b};
  return append(std::move(in));
}

Value Builder::cast(Opcode op, Type to, Value v) {
  Instruction in;
  in.op = op;
  in.type = to;
  in.operands = {v};
  return append(std::move(in));
}

Value Builder::phi(Type t, const std::vector<std::pair<Value, int>>& incoming) {
  Instruction in;
  in.op = Opcode::Phi;
  in.type = t;
  for (const auto& [v, blk] : incoming) {
    in.operands.push_back(v);
    in.operands.push_back(Value::block(blk));
  }
  return append(std::move(in));
}

void Builder::phi_add_incoming(Value phi_result, Value incoming,
                               int block_index) {
  PNP_CHECK(phi_result.kind == Value::Kind::Temp);
  for (auto& b : fn_.blocks) {
    for (auto& in : b.instrs) {
      if (in.op == Opcode::Phi && in.result == phi_result.index) {
        in.operands.push_back(incoming);
        in.operands.push_back(Value::block(block_index));
        return;
      }
    }
  }
  PNP_CHECK_MSG(false, "phi %" << phi_result.index << " not found");
}

void Builder::br(int block_index) {
  Instruction in;
  in.op = Opcode::Br;
  in.operands = {Value::block(block_index)};
  append(std::move(in));
}

void Builder::condbr(Value cond, int then_block, int else_block) {
  PNP_CHECK(cond.type == Type::I1);
  Instruction in;
  in.op = Opcode::CondBr;
  in.operands = {cond, Value::block(then_block), Value::block(else_block)};
  append(std::move(in));
}

void Builder::ret() {
  Instruction in;
  in.op = Opcode::Ret;
  append(std::move(in));
}

void Builder::ret(Value v) {
  Instruction in;
  in.op = Opcode::Ret;
  in.operands = {v};
  append(std::move(in));
}

Value Builder::call(Type ret_type, const std::string& callee,
                    const std::vector<Value>& args) {
  Instruction in;
  in.op = Opcode::Call;
  in.type = ret_type;
  in.aux = callee;
  in.operands = args;
  return append(std::move(in));
}

void Builder::atomicrmw(const std::string& operation, Value ptr, Value value) {
  PNP_CHECK(ptr.type == Type::Ptr);
  Instruction in;
  in.op = Opcode::AtomicRMW;
  in.type = Type::Void;
  in.aux = operation;
  in.operands = {ptr, value};
  append(std::move(in));
}

void Builder::barrier() {
  Instruction in;
  in.op = Opcode::Barrier;
  append(std::move(in));
}

}  // namespace pnp::ir
