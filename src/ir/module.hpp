#pragma once

/// \file module.hpp
/// Containers of the mini-IR: basic blocks, functions, globals, modules.
///
/// A `Module` corresponds to one application; each OpenMP parallel region
/// is represented the way Clang leaves it after lowering: an *outlined*
/// function named `<app>.<region>.omp_outlined`. A synthetic `@<app>.main`
/// caller provides the call-flow context. `extract.hpp` mirrors
/// `llvm-extract`, carving a single region (plus the globals/declarations
/// it references) out of the module for graph construction.

#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace pnp::ir {

/// A labeled sequence of instructions ending in a terminator.
struct BasicBlock {
  std::string name;  ///< label, e.g. "bb3"
  std::vector<Instruction> instrs;
};

/// A typed function argument.
struct Argument {
  std::string name;  ///< e.g. "a0"
  Type type = Type::Ptr;
};

/// An external function prototype (e.g. `declare f64 @sqrt(f64)`).
struct Declaration {
  std::string name;
  Type ret = Type::Void;
  std::vector<Type> params;
};

/// A module-level array/scalar symbol (`global @A f64`). All globals are
/// addressed through opaque pointers; `elem_type` records the element type.
struct Global {
  std::string name;
  Type elem_type = Type::F64;
};

/// A function definition.
struct Function {
  std::string name;
  Type ret = Type::Void;
  std::vector<Argument> args;
  std::vector<BasicBlock> blocks;
  int next_temp = 0;  ///< first unused temp id (maintained by the builder)

  /// Index of the block with the given name, or -1.
  int block_index(std::string_view block_name) const;

  /// Total instruction count across all blocks.
  std::size_t instruction_count() const;
};

/// One translation unit / application.
struct Module {
  std::string name;
  std::vector<Global> globals;
  std::vector<Declaration> declarations;
  std::vector<Function> functions;

  /// Index of the global with the given name, or -1.
  int global_index(std::string_view global_name) const;

  /// Pointer to the function with the given name, or nullptr.
  const Function* find_function(std::string_view fn_name) const;
  Function* find_function(std::string_view fn_name);

  /// True if `name` is a declared external.
  bool is_declared(std::string_view fn_name) const;

  /// Total instruction count across all functions.
  std::size_t instruction_count() const;
};

}  // namespace pnp::ir
