#pragma once

/// \file extract.hpp
/// The `llvm-extract` equivalent (paper §III-A): carve one outlined OpenMP
/// region function out of an application module, together with the globals
/// and external declarations it references. The resulting single-function
/// module is what the flow-graph builder consumes.

#include <string>

#include "ir/module.hpp"

namespace pnp::ir {

/// Extract `function_name` (plus referenced globals/declarations) from `m`
/// into a fresh module named `<m.name>:<function_name>`.
/// Throws pnp::Error if the function does not exist.
Module extract_function(const Module& m, const std::string& function_name);

}  // namespace pnp::ir
