#include "ir/printer.hpp"

#include <charconv>
#include <sstream>

#include "common/error.hpp"

namespace pnp::ir {

namespace {

/// Shortest round-trip decimal form of a double.
std::string double_str(double v) {
  char buf[64];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PNP_CHECK(ec == std::errc());
  std::string s(buf, p);
  // Ensure the token is visually distinct from an integer literal.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
    s += ".0";
  return s;
}

std::string operand_str(const Module& m, const Function& fn, const Value& v) {
  switch (v.kind) {
    case Value::Kind::Temp:
      return "%t" + std::to_string(v.index);
    case Value::Kind::Arg:
      return "%" + fn.args[static_cast<std::size_t>(v.index)].name;
    case Value::Kind::Global:
      return "@" + m.globals[static_cast<std::size_t>(v.index)].name;
    case Value::Kind::ConstInt:
      return std::to_string(v.ival);
    case Value::Kind::ConstFloat:
      return double_str(v.fval);
    case Value::Kind::Block:
      return "%" + fn.blocks[static_cast<std::size_t>(v.index)].name;
    case Value::Kind::None:
      break;
  }
  PNP_CHECK_MSG(false, "cannot print operand of kind None");
}

}  // namespace

std::string print_instruction(const Module& m, const Function& fn,
                              const Instruction& in) {
  std::ostringstream os;
  auto op_str = [&](std::size_t i) { return operand_str(m, fn, in.operands[i]); };

  if (in.has_result()) os << "%t" << in.result << " = ";

  switch (in.op) {
    case Opcode::Alloca:
      os << "alloca " << type_name(in.type);
      break;
    case Opcode::Load:
      os << "load " << type_name(in.type) << " " << op_str(0);
      break;
    case Opcode::Store:
      os << "store " << type_name(in.operands[0].type) << " " << op_str(0)
         << ", " << op_str(1);
      break;
    case Opcode::Gep:
      os << "gep " << op_str(0);
      for (std::size_t i = 1; i < in.operands.size(); ++i)
        os << ", " << op_str(i);
      break;
    case Opcode::ICmp:
    case Opcode::FCmp:
      os << opcode_name(in.op) << " " << in.aux << " "
         << type_name(in.operands[0].type) << " " << op_str(0) << ", "
         << op_str(1);
      break;
    case Opcode::Select:
      os << "select " << type_name(in.type) << " " << op_str(0) << ", "
         << op_str(1) << ", " << op_str(2);
      break;
    case Opcode::Phi: {
      os << "phi " << type_name(in.type);
      for (std::size_t i = 0; i + 1 < in.operands.size(); i += 2)
        os << (i == 0 ? " " : ", ") << "[ " << op_str(i) << ", " << op_str(i + 1)
           << " ]";
      break;
    }
    case Opcode::Br:
      os << "br " << op_str(0);
      break;
    case Opcode::CondBr:
      os << "condbr " << op_str(0) << ", " << op_str(1) << ", " << op_str(2);
      break;
    case Opcode::Ret:
      os << "ret";
      if (!in.operands.empty())
        os << " " << type_name(in.operands[0].type) << " " << op_str(0);
      break;
    case Opcode::Call: {
      os << "call " << type_name(in.type) << " @" << in.aux << "(";
      for (std::size_t i = 0; i < in.operands.size(); ++i)
        os << (i ? ", " : "") << op_str(i);
      os << ")";
      break;
    }
    case Opcode::AtomicRMW:
      os << "atomicrmw " << in.aux << " " << type_name(in.operands[1].type)
         << " " << op_str(0) << ", " << op_str(1);
      break;
    case Opcode::Barrier:
      os << "barrier";
      break;
    default:
      // Binary arithmetic and casts share one form:
      //   %tN = <op> <type> operands...
      os << opcode_name(in.op) << " " << type_name(in.type);
      for (std::size_t i = 0; i < in.operands.size(); ++i)
        os << (i ? ", " : " ") << op_str(i);
      break;
  }
  return os.str();
}

std::string print_function(const Module& m, const Function& fn) {
  std::ostringstream os;
  os << "define " << type_name(fn.ret) << " @" << fn.name << "(";
  for (std::size_t i = 0; i < fn.args.size(); ++i)
    os << (i ? ", " : "") << type_name(fn.args[i].type) << " %"
       << fn.args[i].name;
  os << ") {\n";
  for (const auto& b : fn.blocks) {
    os << b.name << ":\n";
    for (const auto& in : b.instrs)
      os << "  " << print_instruction(m, fn, in) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  os << "module \"" << m.name << "\"\n";
  for (const auto& g : m.globals)
    os << "global @" << g.name << " " << type_name(g.elem_type) << "\n";
  for (const auto& d : m.declarations) {
    os << "declare " << type_name(d.ret) << " @" << d.name << "(";
    for (std::size_t i = 0; i < d.params.size(); ++i)
      os << (i ? ", " : "") << type_name(d.params[i]);
    os << ")\n";
  }
  for (const auto& f : m.functions) os << print_function(m, f);
  return os.str();
}

}  // namespace pnp::ir
