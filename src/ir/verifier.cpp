#include "ir/verifier.hpp"

#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "ir/printer.hpp"

namespace pnp::ir {

namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& m, const Function& fn,
                   std::vector<std::string>& out)
      : m_(m), fn_(fn), out_(out) {}

  void run() {
    if (fn_.blocks.empty()) {
      fail("", "function has no blocks");
      return;
    }
    collect_defs();
    for (std::size_t bi = 0; bi < fn_.blocks.size(); ++bi) check_block(bi);
  }

 private:
  void fail(const std::string& where, const std::string& msg) {
    std::ostringstream os;
    os << fn_.name << (where.empty() ? "" : ":" + where) << ": " << msg;
    out_.push_back(os.str());
  }

  void collect_defs() {
    for (const auto& b : fn_.blocks) {
      for (const auto& in : b.instrs) {
        if (!in.has_result()) continue;
        if (temp_def_.count(in.result))
          fail(b.name, "temp %t" + std::to_string(in.result) + " redefined");
        temp_def_[in.result] =
            (in.op == Opcode::Alloca) ? Type::Ptr : in.type;
      }
    }
  }

  void check_operand(const BasicBlock& b, const Instruction& in,
                     const Value& v) {
    switch (v.kind) {
      case Value::Kind::Temp: {
        auto it = temp_def_.find(v.index);
        if (it == temp_def_.end()) {
          fail(b.name, "use of undefined temp %t" + std::to_string(v.index));
        } else if (it->second != v.type) {
          fail(b.name, "temp %t" + std::to_string(v.index) +
                           " used with type " + std::string(type_name(v.type)) +
                           " but defined as " +
                           std::string(type_name(it->second)) + " in '" +
                           print_instruction(m_, fn_, in) + "'");
        }
        break;
      }
      case Value::Kind::Arg:
        if (v.index < 0 || v.index >= static_cast<int>(fn_.args.size()))
          fail(b.name, "argument index out of range");
        break;
      case Value::Kind::Global:
        if (v.index < 0 || v.index >= static_cast<int>(m_.globals.size()))
          fail(b.name, "global index out of range");
        break;
      case Value::Kind::Block:
        if (v.index < 0 || v.index >= static_cast<int>(fn_.blocks.size()))
          fail(b.name, "branch target out of range");
        break;
      case Value::Kind::ConstInt:
        if (!is_integer(v.type))
          fail(b.name, "integer constant with non-integer type");
        break;
      case Value::Kind::ConstFloat:
        if (!is_float(v.type))
          fail(b.name, "float constant with non-float type");
        break;
      case Value::Kind::None:
        fail(b.name, "operand of kind None");
        break;
    }
  }

  void check_block(std::size_t bi) {
    const BasicBlock& b = fn_.blocks[bi];
    if (b.instrs.empty()) {
      fail(b.name, "empty block");
      return;
    }
    for (std::size_t ii = 0; ii < b.instrs.size(); ++ii) {
      const Instruction& in = b.instrs[ii];
      const bool last = (ii + 1 == b.instrs.size());
      if (is_terminator(in.op) != last) {
        fail(b.name, last ? "block does not end in a terminator"
                          : "terminator in the middle of a block");
      }
      for (const auto& v : in.operands) check_operand(b, in, v);
      check_instruction(b, in);
    }
  }

  void check_instruction(const BasicBlock& b, const Instruction& in) {
    auto expect_operands = [&](std::size_t n) {
      if (in.operands.size() != n)
        fail(b.name, std::string(opcode_name(in.op)) + " expects " +
                         std::to_string(n) + " operands, has " +
                         std::to_string(in.operands.size()));
    };
    switch (in.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::SDiv: case Opcode::SRem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::LShr:
        expect_operands(2);
        if (!is_integer(in.type))
          fail(b.name, "integer binop with non-integer type");
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv:
        expect_operands(2);
        if (!is_float(in.type))
          fail(b.name, "float binop with non-float type");
        break;
      case Opcode::Load:
        expect_operands(1);
        if (!in.operands.empty() && in.operands[0].type != Type::Ptr)
          fail(b.name, "load operand must be a pointer");
        break;
      case Opcode::Store:
        expect_operands(2);
        if (in.operands.size() == 2 && in.operands[1].type != Type::Ptr)
          fail(b.name, "store target must be a pointer");
        break;
      case Opcode::Gep:
        if (in.operands.size() < 2)
          fail(b.name, "gep needs a base pointer and at least one index");
        else if (in.operands[0].type != Type::Ptr)
          fail(b.name, "gep base must be a pointer");
        break;
      case Opcode::ICmp:
        expect_operands(2);
        if (in.aux != "eq" && in.aux != "ne" && in.aux != "slt" &&
            in.aux != "sle" && in.aux != "sgt" && in.aux != "sge")
          fail(b.name, "bad icmp predicate '" + in.aux + "'");
        break;
      case Opcode::FCmp:
        expect_operands(2);
        if (in.aux != "oeq" && in.aux != "one" && in.aux != "olt" &&
            in.aux != "ole" && in.aux != "ogt" && in.aux != "oge")
          fail(b.name, "bad fcmp predicate '" + in.aux + "'");
        break;
      case Opcode::Select:
        expect_operands(3);
        break;
      case Opcode::Phi:
        if (in.operands.size() < 2 || in.operands.size() % 2 != 0)
          fail(b.name, "phi needs (value, block) pairs");
        else
          for (std::size_t i = 0; i < in.operands.size(); i += 2)
            if (in.operands[i + 1].kind != Value::Kind::Block)
              fail(b.name, "phi incoming slot is not a block");
        break;
      case Opcode::Br:
        expect_operands(1);
        break;
      case Opcode::CondBr:
        expect_operands(3);
        if (!in.operands.empty() && in.operands[0].type != Type::I1)
          fail(b.name, "condbr condition must be i1");
        break;
      case Opcode::Ret:
        if (fn_.ret == Type::Void) {
          expect_operands(0);
        } else {
          expect_operands(1);
          if (!in.operands.empty() && in.operands[0].type != fn_.ret)
            fail(b.name, "ret type mismatch");
        }
        break;
      case Opcode::Call: {
        const bool is_internal = m_.find_function(in.aux) != nullptr;
        const bool is_external = m_.is_declared(in.aux);
        if (!is_internal && !is_external)
          fail(b.name, "call to unknown function '@" + in.aux + "'");
        break;
      }
      case Opcode::AtomicRMW:
        expect_operands(2);
        if (in.aux != "add" && in.aux != "fadd" && in.aux != "min" &&
            in.aux != "max" && in.aux != "fmin" && in.aux != "fmax")
          fail(b.name, "bad atomicrmw operation '" + in.aux + "'");
        break;
      case Opcode::Alloca:
      case Opcode::Barrier:
        expect_operands(in.op == Opcode::Barrier ? 0 : 0);
        break;
      default:
        // Casts: single operand.
        expect_operands(1);
        break;
    }
  }

  const Module& m_;
  const Function& fn_;
  std::vector<std::string>& out_;
  std::map<int, Type> temp_def_;
};

}  // namespace

std::vector<std::string> verify_module(const Module& m) {
  std::vector<std::string> problems;
  std::set<std::string> fn_names;
  for (const auto& f : m.functions) {
    if (!fn_names.insert(f.name).second)
      problems.push_back("duplicate function '@" + f.name + "'");
    FunctionVerifier(m, f, problems).run();
  }
  std::set<std::string> gnames;
  for (const auto& g : m.globals)
    if (!gnames.insert(g.name).second)
      problems.push_back("duplicate global '@" + g.name + "'");
  return problems;
}

void verify_or_throw(const Module& m) {
  const auto problems = verify_module(m);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "IR verification failed for module '" << m.name << "':";
  for (const auto& p : problems) os << "\n  " << p;
  throw Error(os.str());
}

}  // namespace pnp::ir
