#pragma once

/// \file verifier.hpp
/// Structural and type checking of mini-IR modules, in the spirit of
/// llvm::verifyModule. The workload generator runs every synthesized region
/// through this before graph construction.

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace pnp::ir {

/// Collect all verification failures in `m` (empty means the module is
/// well-formed). Messages are prefixed with `function:block` context.
std::vector<std::string> verify_module(const Module& m);

/// Throws pnp::Error listing all problems if the module is malformed.
void verify_or_throw(const Module& m);

}  // namespace pnp::ir
