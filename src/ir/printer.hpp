#pragma once

/// \file printer.hpp
/// Textual form of the mini-IR. `print_module(parse_module(text))` is
/// guaranteed to reproduce `text` (round-trip tested).

#include <string>

#include "ir/module.hpp"

namespace pnp::ir {

/// Render one instruction (no trailing newline). `fn` supplies arg/block
/// names; `m` supplies global names.
std::string print_instruction(const Module& m, const Function& fn,
                              const Instruction& instr);

/// Render a whole function definition.
std::string print_function(const Module& m, const Function& fn);

/// Render a whole module.
std::string print_module(const Module& m);

}  // namespace pnp::ir
