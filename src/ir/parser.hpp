#pragma once

/// \file parser.hpp
/// Parser for the textual mini-IR produced by printer.hpp. Throws
/// pnp::Error with a line number on malformed input.

#include <string>
#include <string_view>

#include "ir/module.hpp"

namespace pnp::ir {

/// Parse a complete module from its textual form.
Module parse_module(std::string_view text);

}  // namespace pnp::ir
