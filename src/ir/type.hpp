#pragma once

/// \file type.hpp
/// The mini-IR type system. A deliberately small subset of LLVM's types —
/// everything the OpenMP kernels in the workload suite need.

#include <cstdint>
#include <string_view>

namespace pnp::ir {

enum class Type : std::uint8_t {
  Void,
  I1,   ///< booleans / comparison results
  I32,
  I64,  ///< loop counters, indices
  F32,
  F64,  ///< the kernels' arithmetic element type
  Ptr,  ///< opaque pointer (LLVM >= 15 style)
};

constexpr bool is_integer(Type t) {
  return t == Type::I1 || t == Type::I32 || t == Type::I64;
}

constexpr bool is_float(Type t) { return t == Type::F32 || t == Type::F64; }

constexpr bool is_arith(Type t) { return is_integer(t) || is_float(t); }

constexpr std::string_view type_name(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::I1: return "i1";
    case Type::I32: return "i32";
    case Type::I64: return "i64";
    case Type::F32: return "f32";
    case Type::F64: return "f64";
    case Type::Ptr: return "ptr";
  }
  return "?";
}

/// Parse a type name; returns true on success.
bool parse_type(std::string_view name, Type& out);

}  // namespace pnp::ir
